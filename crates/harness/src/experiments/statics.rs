//! Static-analysis experiments: the `analyze` CLI backend and the
//! `static-agreement` gate comparing ahead-of-time verdicts against
//! dynamic discovery observations.
//!
//! The agreement gate holds the analyzer's soundness line as a
//! regression check: a [`StaticVerdict::StaticImmutable`] AR must never
//! produce a discovery decision with `immutable == false`. Any such
//! observation counts as a failure (non-zero exit) *and* is pinned to
//! zero in `goldens/static-agreement.json`.

use super::{opts_json, size_str, ExperimentOutput};
use crate::json::Json;
use crate::pool;
use crate::suite::SuiteOptions;
use clear_analysis::{
    analyze_workload, ArReport, LockPrediction, OverflowPrediction, StaticBudget, StaticVerdict,
    WorkloadReport,
};
use clear_core::ObservedClass;
use clear_machine::{Machine, Preset, TraceEvent};
use clear_workloads::{by_name, Size, BENCHMARK_NAMES};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Sampling context pinned for the gate, matching `table1-measured`'s
/// dynamic run: Small input, 16 cores, retry threshold 5, seed 5.
const SAMPLE_THREADS: usize = 16;
const SAMPLE_SEED: u64 = 5;

/// Observed classes in fixed column order (also the majority tie-break).
const OBSERVED: [ObservedClass; 4] = [
    ObservedClass::Immutable,
    ObservedClass::Mutable,
    ObservedClass::Overflowed,
    ObservedClass::Unlockable,
];

fn observed_idx(class: ObservedClass) -> usize {
    OBSERVED
        .iter()
        .position(|&o| o == class)
        .expect("in OBSERVED")
}

fn overflow_str(p: OverflowPrediction) -> &'static str {
    match p {
        OverflowPrediction::Fits => "fits",
        OverflowPrediction::Overflow => "overflow",
        OverflowPrediction::Unknown => "unknown",
    }
}

fn lock_str(p: LockPrediction) -> &'static str {
    match p {
        LockPrediction::Lockable => "lockable",
        LockPrediction::Unlockable => "unlockable",
        LockPrediction::Unknown => "unknown",
    }
}

/// Static side of the gate: sample and analyze one benchmark under the
/// pinned context.
fn static_side(name: &str) -> WorkloadReport {
    analyze(name, Size::Small, SAMPLE_THREADS, SAMPLE_SEED)
        .unwrap_or_else(|e| panic!("static analysis of {name} failed: {e}"))
}

/// Samples and statically analyzes one benchmark.
fn analyze(name: &str, size: Size, threads: usize, seed: u64) -> Result<WorkloadReport, String> {
    let mut w = by_name(name, size, seed).ok_or_else(|| format!("unknown benchmark {name}"))?;
    analyze_workload(&mut *w, threads, &StaticBudget::default())
}

/// Dynamic side of the gate: per-AR counts of observed classes derived
/// from every discovery decision of one traced run.
fn dynamic_side(name: &str) -> HashMap<u32, [u64; 4]> {
    let w = by_name(name, Size::Small, SAMPLE_SEED).expect("known benchmark");
    let mut cfg = Preset::C.config(SAMPLE_THREADS, 5);
    cfg.seed = SAMPLE_SEED;
    let mut m = Machine::new(cfg, w);
    m.enable_tracing();
    m.run();
    let mut per_ar: HashMap<u32, [u64; 4]> = HashMap::new();
    for r in m.trace().records() {
        if let TraceEvent::Decision {
            ar,
            mode,
            immutable,
            ..
        } = &r.event
        {
            let class = ObservedClass::from_mode(*mode, *immutable);
            per_ar.entry(ar.0).or_default()[observed_idx(class)] += 1;
        }
    }
    per_ar
}

/// The observed class seen most often (ties break in `OBSERVED` order);
/// `None` when the AR never reached a discovery decision.
fn majority(counts: &[u64; 4]) -> Option<ObservedClass> {
    let mut best = OBSERVED[0];
    for &c in &OBSERVED[1..] {
        if counts[observed_idx(c)] > counts[observed_idx(best)] {
            best = c;
        }
    }
    (counts[observed_idx(best)] > 0).then_some(best)
}

pub(super) fn static_agreement(opts: &SuiteOptions) -> ExperimentOutput {
    let per_bench = pool::run_indexed(BENCHMARK_NAMES.len(), opts.workers, |i| {
        let name = BENCHMARK_NAMES[i];
        (static_side(name), dynamic_side(name))
    });

    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== static-agreement: ahead-of-time verdicts vs dynamic discovery ==="
    );
    let _ = writeln!(
        text,
        "{:14} {:16} {:18} {:18} {:>6} {:>9}  {:10} {:>5}",
        "benchmark", "AR", "declared", "static verdict", "lines", "decisions", "majority", "agree"
    );

    let mut rows = Vec::new();
    // confusion[verdict][observed-or-none]
    let mut confusion = [[0u64; 5]; 4];
    let mut ars = 0u64;
    let mut with_decisions = 0u64;
    let mut agreeing = 0u64;
    let mut unsound = 0u64;

    for (name, (report, dynamics)) in BENCHMARK_NAMES.iter().zip(&per_bench) {
        for ar in &report.ars {
            ars += 1;
            let verdict = ar.analysis.verdict;
            let counts = dynamics.get(&ar.spec.id.0).copied().unwrap_or_default();
            let decisions: u64 = counts.iter().sum();
            let maj = majority(&counts);
            let agree = maj.map(|m| verdict.agrees_with(m));
            let vi = StaticVerdict::ALL
                .iter()
                .position(|&v| v == verdict)
                .expect("in ALL");
            match maj {
                Some(m) => {
                    with_decisions += 1;
                    confusion[vi][observed_idx(m)] += 1;
                    if agree == Some(true) {
                        agreeing += 1;
                    }
                }
                None => confusion[vi][4] += 1,
            }
            if verdict == StaticVerdict::StaticImmutable {
                // Soundness: every immutable==false observation of a
                // proved-immutable AR is an analyzer bug.
                unsound += counts[observed_idx(ObservedClass::Mutable)];
            }

            let lines_txt = match ar.analysis.footprint.lines {
                Some(n) => n.to_string(),
                None => "-".into(),
            };
            let _ = writeln!(
                text,
                "{:14} {:16} {:18} {:18} {:>6} {:>9}  {:10} {:>5}",
                name,
                ar.spec.name,
                ar.spec.mutability.to_string(),
                verdict.to_string(),
                lines_txt,
                decisions,
                maj.map(|m| m.to_string()).unwrap_or_else(|| "-".into()),
                match agree {
                    Some(true) => "yes",
                    Some(false) => "NO",
                    None => "-",
                },
            );
            rows.push(agreement_row_json(name, ar, &counts, decisions, maj, agree));
        }
    }

    let agreement_pct = if with_decisions == 0 {
        f64::NAN
    } else {
        100.0 * agreeing as f64 / with_decisions as f64
    };
    let _ = writeln!(
        text,
        "\nARs: {ars}   with decisions: {with_decisions}   agreeing: {agreeing} \
         ({agreement_pct:.1}%)   unsound immutable observations: {unsound}"
    );
    let _ = writeln!(
        text,
        "note: non-convertible is an upper-bound prediction; a mutable majority \
         means this run never reached the bound (imprecision, not unsoundness)."
    );
    let _ = writeln!(text, "\nconfusion (static verdict x observed majority):");
    let _ = writeln!(
        text,
        "{:18} {:>10} {:>10} {:>10} {:>10} {:>6}",
        "verdict", "immutable", "mutable", "overflowed", "unlockable", "none"
    );
    let mut confusion_json = Vec::new();
    for (vi, verdict) in StaticVerdict::ALL.iter().enumerate() {
        let c = &confusion[vi];
        let _ = writeln!(
            text,
            "{:18} {:>10} {:>10} {:>10} {:>10} {:>6}",
            verdict.name(),
            c[0],
            c[1],
            c[2],
            c[3],
            c[4]
        );
        confusion_json.push(Json::obj([
            ("verdict", Json::from(verdict.name())),
            ("immutable", Json::from(c[0])),
            ("mutable", Json::from(c[1])),
            ("overflowed", Json::from(c[2])),
            ("unlockable", Json::from(c[3])),
            ("none", Json::from(c[4])),
        ]));
    }

    let json = Json::obj([
        ("experiment", Json::from("static-agreement")),
        ("options", opts_json(opts)),
        ("sample_threads", Json::from(SAMPLE_THREADS)),
        ("sample_seed", Json::from(SAMPLE_SEED)),
        ("rows", Json::Arr(rows)),
        ("confusion", Json::Arr(confusion_json)),
        ("ars", Json::from(ars)),
        ("ars_with_decisions", Json::from(with_decisions)),
        ("agreeing", Json::from(agreeing)),
        ("agreement_pct", Json::from(agreement_pct)),
        ("unsound_immutable_observations", Json::from(unsound)),
    ]);
    let mut out = ExperimentOutput::new(text, json);
    out.failures = unsound as usize;
    out
}

fn agreement_row_json(
    name: &str,
    ar: &ArReport,
    counts: &[u64; 4],
    decisions: u64,
    maj: Option<ObservedClass>,
    agree: Option<bool>,
) -> Json {
    Json::obj([
        ("benchmark", Json::from(name)),
        ("ar", Json::from(ar.spec.name.clone())),
        ("declared", Json::from(ar.spec.mutability.to_string())),
        ("verdict", Json::from(ar.analysis.verdict.name())),
        (
            "lines",
            ar.analysis
                .footprint
                .lines
                .map(Json::from)
                .unwrap_or(Json::Null),
        ),
        ("max_depth", Json::from(u64::from(ar.analysis.max_depth))),
        ("overflow", Json::from(overflow_str(ar.analysis.overflow))),
        ("lockability", Json::from(lock_str(ar.analysis.lockability))),
        ("decisions", Json::from(decisions)),
        (
            "observed",
            Json::obj([
                ("immutable", Json::from(counts[0])),
                ("mutable", Json::from(counts[1])),
                ("overflowed", Json::from(counts[2])),
                ("unlockable", Json::from(counts[3])),
            ]),
        ),
        (
            "majority",
            maj.map(|m| Json::from(m.to_string())).unwrap_or(Json::Null),
        ),
        ("agree", agree.map(Json::from).unwrap_or(Json::Null)),
    ])
}

/// Backend of `clear-harness analyze <workload>`: full per-AR static
/// report for one benchmark, or for every registered benchmark when
/// `name` is `all`. Uses the CLI's size/cores/seed, so the same command
/// inspects any input scale.
///
/// # Errors
///
/// Reports unknown benchmark names and sampling failures (an AR that
/// never appears within the pull budget at this size/thread count).
pub fn analyze_output(name: &str, opts: &SuiteOptions) -> Result<ExperimentOutput, String> {
    let names: Vec<&str> = if name == "all" {
        BENCHMARK_NAMES.to_vec()
    } else {
        vec![*BENCHMARK_NAMES
            .iter()
            .find(|&&n| n == name)
            .ok_or_else(|| format!("unknown benchmark {name} (try `all`)"))?]
    };
    let seed = opts.seeds[0];
    let reports = names
        .iter()
        .map(|n| analyze(n, opts.size, opts.cores, seed))
        .collect::<Result<Vec<_>, String>>()?;

    let mut text = String::new();
    let mut workloads = Vec::new();
    for report in &reports {
        let _ = writeln!(
            text,
            "=== static analysis of {} ({} input, {} threads, seed {}) ===",
            report.name,
            size_str(opts.size),
            opts.cores,
            seed
        );
        let _ = writeln!(text, "mapped memory: {} bytes", report.mapped_bytes);
        let _ = writeln!(
            text,
            "{:16} {:18} {:18} {:>6} {:>6} {:>6} {:>9} {:>11}",
            "AR", "declared", "verdict", "insns", "blocks", "lines", "overflow", "lockability"
        );
        let mut ars = Vec::new();
        for ar in &report.ars {
            let lines_txt = match ar.analysis.footprint.lines {
                Some(n) => n.to_string(),
                None => "-".into(),
            };
            let _ = writeln!(
                text,
                "{:16} {:18} {:18} {:>6} {:>6} {:>6} {:>9} {:>11}",
                ar.spec.name,
                ar.spec.mutability.to_string(),
                ar.analysis.verdict.to_string(),
                ar.analysis.instructions,
                ar.analysis.blocks,
                lines_txt,
                overflow_str(ar.analysis.overflow),
                lock_str(ar.analysis.lockability),
            );
            for lint in &ar.analysis.lints {
                let _ = writeln!(text, "    lint: {lint}");
            }
            ars.push(analyze_ar_json(ar));
        }
        let _ = writeln!(text);
        workloads.push(Json::obj([
            ("benchmark", Json::from(report.name.clone())),
            ("mapped_bytes", Json::from(report.mapped_bytes)),
            ("ars", Json::Arr(ars)),
        ]));
    }

    let lint_count: usize = reports
        .iter()
        .flat_map(|r| &r.ars)
        .map(|a| a.analysis.lints.len())
        .sum();
    let json = Json::obj([
        ("command", Json::from("analyze")),
        ("options", opts_json(opts)),
        ("workloads", Json::Arr(workloads)),
        ("lints", Json::from(lint_count)),
    ]);
    let mut out = ExperimentOutput::new(text, json);
    // A lint in a registered workload is a defect: fail the invocation.
    out.failures = lint_count;
    Ok(out)
}

fn analyze_ar_json(ar: &ArReport) -> Json {
    let fp = &ar.analysis.footprint;
    let opt = |v: Option<usize>| v.map(Json::from).unwrap_or(Json::Null);
    Json::obj([
        ("id", Json::from(u64::from(ar.spec.id.0))),
        ("ar", Json::from(ar.spec.name.clone())),
        ("declared", Json::from(ar.spec.mutability.to_string())),
        ("verdict", Json::from(ar.analysis.verdict.name())),
        ("instructions", Json::from(ar.analysis.instructions)),
        ("blocks", Json::from(ar.analysis.blocks)),
        ("reachable_blocks", Json::from(ar.analysis.reachable_blocks)),
        ("lines", opt(fp.lines)),
        ("written_lines", opt(fp.written_lines)),
        ("exact_lines", Json::from(fp.exact_lines)),
        ("unknown_sites", Json::from(fp.unknown_sites)),
        ("concrete", Json::from(fp.concrete)),
        ("max_depth", Json::from(u64::from(ar.analysis.max_depth))),
        ("indirect_sites", Json::from(ar.analysis.indirect_sites)),
        (
            "dependent_branches",
            Json::from(ar.analysis.dependent_branches),
        ),
        ("overflow", Json::from(overflow_str(ar.analysis.overflow))),
        ("lockability", Json::from(lock_str(ar.analysis.lockability))),
        (
            "lints",
            Json::arr(ar.analysis.lints.iter().map(|l| Json::from(l.to_string()))),
        ),
        (
            "declared_footprint_matches",
            ar.declared_footprint_matches
                .map(Json::from)
                .unwrap_or(Json::Null),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> SuiteOptions {
        SuiteOptions {
            size: Size::Tiny,
            cores: 4,
            seeds: vec![1],
            retry_sweep: vec![5],
            benchmarks: vec!["mwobject"],
            workers: 2,
            sim_threads: 1,
            ..SuiteOptions::default()
        }
    }

    #[test]
    fn analyze_reports_one_workload() {
        let out = analyze_output("mwobject", &tiny_opts()).unwrap();
        assert!(out.text.contains("static analysis of mwobject"));
        assert_eq!(out.failures, 0, "registered workload has lints");
        let Json::Obj(fields) = &out.json else {
            panic!("not an object")
        };
        assert!(fields.iter().any(|(k, _)| k == "workloads"));
    }

    #[test]
    fn analyze_rejects_unknown_names() {
        let err = analyze_output("no-such-benchmark", &tiny_opts()).unwrap_err();
        assert!(err.contains("unknown benchmark"), "{err}");
    }

    #[test]
    fn majority_breaks_ties_and_handles_empty() {
        assert_eq!(majority(&[0, 0, 0, 0]), None);
        assert_eq!(majority(&[2, 2, 0, 0]), Some(ObservedClass::Immutable));
        assert_eq!(majority(&[0, 1, 5, 0]), Some(ObservedClass::Overflowed));
    }
}
