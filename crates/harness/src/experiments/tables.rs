//! Table experiments: the static Table 1 characterization, its measured
//! (dynamic) validation, and the Table 2 configuration dump.

use super::{opts_json, ExperimentOutput};
use crate::json::Json;
use crate::pool;
use crate::suite::SuiteOptions;
use clear_isa::Mutability;
use clear_machine::{Machine, MachineConfig, Preset, TraceEvent};
use clear_workloads::{by_name, Size, BENCHMARK_NAMES};
use std::collections::HashMap;
use std::fmt::Write as _;

fn measured_immutability(name: &str) -> HashMap<u32, (u64, u64)> {
    let w = by_name(name, Size::Small, 5).expect("known benchmark");
    let mut cfg = Preset::C.config(16, 5);
    cfg.seed = 5;
    let mut m = Machine::new(cfg, w);
    m.enable_tracing();
    m.run();
    let mut per_ar: HashMap<u32, (u64, u64)> = HashMap::new();
    for r in m.trace().records() {
        if let TraceEvent::Decision { ar, immutable, .. } = &r.event {
            let slot = per_ar.entry(ar.0).or_default();
            slot.1 += 1;
            if *immutable {
                slot.0 += 1;
            }
        }
    }
    per_ar
}

pub(super) fn table1_measured(opts: &SuiteOptions) -> ExperimentOutput {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== Table 1 (measured): share of discovery decisions assessing immutability ==="
    );
    let _ = writeln!(
        text,
        "{:14} {:16} {:18} {:>10} {:>10}",
        "benchmark", "AR", "static class", "decisions", "immut.%"
    );
    let measured = pool::run_indexed(BENCHMARK_NAMES.len(), opts.workers, |i| {
        measured_immutability(BENCHMARK_NAMES[i])
    });
    let mut rows = Vec::new();
    for (name, dyn_imm) in BENCHMARK_NAMES.iter().zip(&measured) {
        let w = by_name(name, Size::Tiny, 1).expect("known benchmark");
        let meta = w.meta();
        for spec in &meta.ars {
            let (imm, total) = dyn_imm.get(&spec.id.0).copied().unwrap_or((0, 0));
            let pct = if total == 0 {
                f64::NAN
            } else {
                100.0 * imm as f64 / total as f64
            };
            let _ = writeln!(
                text,
                "{:14} {:16} {:18} {:>10} {:>10.0}",
                name,
                spec.name,
                spec.mutability.to_string(),
                total,
                pct
            );
            rows.push(Json::obj([
                ("benchmark", Json::from(*name)),
                ("ar", Json::from(spec.name.clone())),
                ("class", Json::from(spec.mutability.to_string())),
                ("decisions", Json::from(total)),
                ("immutable_decisions", Json::from(imm)),
                ("immut_pct", Json::from(pct)),
            ]));
        }
    }
    let json = Json::obj([
        ("experiment", Json::from("table1-measured")),
        ("rows", Json::Arr(rows)),
    ]);
    ExperimentOutput::new(text, json)
}

pub(super) fn table1(_opts: &SuiteOptions) -> ExperimentOutput {
    let mut text = String::new();
    let _ = writeln!(text, "=== Table 1: Characterization of ARs ===");
    let _ = writeln!(
        text,
        "{:14} {:>8} {:>10} {:>17} {:>8}",
        "benchmark", "# of ARs", "immutable", "likely immutable", "mutable"
    );
    let mut totals = [0usize; 4];
    let mut rows = Vec::new();
    for name in BENCHMARK_NAMES {
        let w = by_name(name, Size::Tiny, 1).expect("known benchmark");
        let meta = w.meta();
        let count = |m: Mutability| meta.ars.iter().filter(|a| a.mutability == m).count();
        let (i, l, mu) = (
            count(Mutability::Immutable),
            count(Mutability::LikelyImmutable),
            count(Mutability::Mutable),
        );
        totals[0] += meta.ars.len();
        totals[1] += i;
        totals[2] += l;
        totals[3] += mu;
        let _ = writeln!(
            text,
            "{:14} {:>8} {:>10} {:>17} {:>8}",
            name,
            meta.ars.len(),
            i,
            l,
            mu
        );
        rows.push(Json::obj([
            ("benchmark", Json::from(name)),
            ("ars", Json::from(meta.ars.len())),
            ("immutable", Json::from(i)),
            ("likely_immutable", Json::from(l)),
            ("mutable", Json::from(mu)),
        ]));
    }
    let _ = writeln!(
        text,
        "{:14} {:>8} {:>10} {:>17} {:>8}",
        "total", totals[0], totals[1], totals[2], totals[3]
    );
    let json = Json::obj([
        ("experiment", Json::from("table1")),
        ("rows", Json::Arr(rows)),
        ("totals", Json::arr(totals.iter().map(|&t| Json::from(t)))),
    ]);
    ExperimentOutput::new(text, json)
}

pub(super) fn table2(opts: &SuiteOptions) -> ExperimentOutput {
    let c = MachineConfig::table2(32);
    let mut text = String::new();
    let _ = writeln!(text, "=== Table 2: Baseline system configuration ===");
    let _ = writeln!(
        text,
        "Cores            {} in-order-retire cores, one instruction per step",
        c.cores
    );
    let _ = writeln!(
        text,
        "Store queue      {} entries (bounds failed-mode discovery)",
        c.sq_size
    );
    let _ = writeln!(
        text,
        "L1 data cache    {} sets x {} ways ({} KiB), {}-cycle access",
        c.coherence.l1.sets,
        c.coherence.l1.ways,
        c.coherence.l1.lines() * 64 / 1024,
        c.coherence.lat_l1
    );
    let _ = writeln!(text, "L2 (shadow)      {}-cycle access", c.coherence.lat_l2);
    let _ = writeln!(text, "L3 / remote      {}-cycle access", c.coherence.lat_l3);
    let _ = writeln!(
        text,
        "Memory           {}-cycle access",
        c.coherence.lat_mem
    );
    let _ = writeln!(
        text,
        "Directory        {} sets x {} ways (lexicographical lock order)",
        c.coherence.directory.sets, c.coherence.directory.ways
    );
    let _ = writeln!(
        text,
        "Coherence        directory MESI, +{} cycles per invalidation",
        c.coherence.lat_inval
    );
    let _ = writeln!(
        text,
        "HTM              requester-wins / PowerTM; best of 1..10 retries, then fallback lock"
    );
    let _ = writeln!(
        text,
        "Timing           xbegin {}, commit {}, abort {}, locked-line retry every {} cycles",
        c.timing.xbegin_cost, c.timing.commit_cost, c.timing.abort_penalty, c.timing.spin_interval
    );
    let _ = writeln!(
        text,
        "CLEAR            ERT 16 fully-assoc, ALT 32, CRT 64 (8-way); < 1 KiB per core"
    );
    let json = Json::obj([
        ("experiment", Json::from("table2")),
        ("options", opts_json(opts)),
        ("cores", Json::from(c.cores)),
        ("sq_size", Json::from(c.sq_size)),
        ("l1_sets", Json::from(c.coherence.l1.sets)),
        ("l1_ways", Json::from(c.coherence.l1.ways)),
        ("lat_l1", Json::from(c.coherence.lat_l1)),
        ("lat_l2", Json::from(c.coherence.lat_l2)),
        ("lat_l3", Json::from(c.coherence.lat_l3)),
        ("lat_mem", Json::from(c.coherence.lat_mem)),
        ("lat_inval", Json::from(c.coherence.lat_inval)),
        ("xbegin_cost", Json::from(c.timing.xbegin_cost)),
        ("commit_cost", Json::from(c.timing.commit_cost)),
        ("abort_penalty", Json::from(c.timing.abort_penalty)),
        ("spin_interval", Json::from(c.timing.spin_interval)),
    ]);
    ExperimentOutput::new(text, json)
}
