//! The `backend-shootout` experiment: every speculation backend over the
//! lint-clean benchmark suite on identical coherence, scheduler and
//! workload layers.
//!
//! This is the headline artifact of the pluggable-backend refactor: CLEAR,
//! requester-wins TSX, PowerTM, SLE and the limited-R/W-set scheme differ
//! *only* in the [`clear_machine::SpeculationBackend`] implementation each
//! run plugs in, so differences in commit throughput, abort taxonomy and
//! fallback occupancy are attributable to the conflict-resolution and
//! retry policies alone. The gated golden pins the full 5-backend ×
//! 19-benchmark grid bit-exactly.

use super::{opts_json, ExperimentOutput};
use crate::json::Json;
use crate::pool;
use crate::suite::{run_once_backend, SuiteOptions};
use clear_htm::AbortKind;
use clear_machine::{BackendId, RunStats};
use clear_workloads::Size;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Pinned options for the `backend-shootout` golden: the tiny inputs on an
/// 8-core machine, one seed, retry threshold 5, all benchmarks and all
/// backends — 95 runs, well under a second of CI time.
pub(super) fn shootout_opts() -> SuiteOptions {
    SuiteOptions {
        size: Size::Tiny,
        cores: 8,
        seeds: vec![1],
        retry_sweep: vec![5],
        sim_threads: 1,
        ..SuiteOptions::default()
    }
}

/// Per-(benchmark, backend) accumulator, summed over seeds.
#[derive(Clone, Default)]
struct Cell {
    cycles: u64,
    aborts: BTreeMap<&'static str, u64>,
    commits: u64,
    fallback_commits: u64,
    lrws_read: u64,
    lrws_write: u64,
}

impl Cell {
    fn absorb(&mut self, s: &RunStats) {
        self.cycles += s.total_cycles;
        self.commits += s.commits_by_mode.total();
        self.fallback_commits += s.commits_by_mode.fallback;
        self.lrws_read += s.lrws_read_capacity_aborts;
        self.lrws_write += s.lrws_write_capacity_aborts;
        for kind in AbortKind::ALL {
            let n = s.aborts.get(kind);
            if n > 0 {
                *self.aborts.entry(kind_name(kind)).or_default() += n;
            }
        }
    }

    fn aborts_total(&self) -> u64 {
        self.aborts.values().sum()
    }

    /// Fallback occupancy: percentage of commits that took the fallback
    /// path.
    fn fallback_pct(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            100.0 * self.fallback_commits as f64 / self.commits as f64
        }
    }
}

/// [`AbortKind`] display names as `&'static str` (JSON keys want them
/// without an allocation per event).
fn kind_name(kind: AbortKind) -> &'static str {
    match kind {
        AbortKind::MemoryConflict => "memory-conflict",
        AbortKind::ExplicitFallback => "explicit-fallback",
        AbortKind::OtherFallback => "other-fallback",
        AbortKind::Capacity => "capacity",
        AbortKind::Nacked => "nacked",
        AbortKind::Explicit => "explicit",
        AbortKind::PlanViolation => "plan-violation",
        AbortKind::Other => "other",
    }
}

/// The `backend-shootout` experiment: `opts.backends` × `opts.benchmarks`
/// × `opts.seeds` at the first retry threshold of `opts.retry_sweep`,
/// reporting summed cycles, commit throughput, the abort taxonomy and
/// fallback occupancy per cell, plus a per-backend summary with execution
/// cycles normalized to the first backend in the sweep (geometric mean
/// over benchmarks).
pub(super) fn backend_shootout(opts: &SuiteOptions) -> ExperimentOutput {
    let backends: Vec<BackendId> = opts
        .backends
        .iter()
        .map(|n| BackendId::from_name(n).expect("SuiteOptions validated the backend names"))
        .collect();
    let retries = opts.retry_sweep[0];

    // One coordinate per (benchmark, backend, seed); the pool preserves
    // index order, so the reduce below is deterministic for any worker
    // count.
    let grid: Vec<(usize, usize, u64)> = (0..opts.benchmarks.len())
        .flat_map(|b| {
            (0..backends.len()).flat_map(move |k| opts.seeds.iter().map(move |&s| (b, k, s)))
        })
        .collect();
    let results = pool::run_indexed(grid.len(), opts.workers, |g| {
        let (b, k, seed) = grid[g];
        run_once_backend(
            opts.benchmarks[b],
            backends[k],
            opts.cores,
            retries,
            opts.size,
            seed,
            opts.sim_threads,
        )
    });

    let mut cells: BTreeMap<(usize, usize), Cell> = BTreeMap::new();
    for (g, stats) in results.iter().enumerate() {
        let (b, k, _) = grid[g];
        cells.entry((b, k)).or_default().absorb(stats);
    }

    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== backend-shootout: {} backends x {} benchmarks (size {}, {} cores, \
         retries {retries}) ===",
        backends.len(),
        opts.benchmarks.len(),
        super::size_str(opts.size),
        opts.cores
    );
    let _ = writeln!(
        text,
        "{:12} {:8} {:>10} {:>8} {:>7} {:>9} {:>9} {:>8}",
        "benchmark", "backend", "cycles", "commits", "aborts", "fallback%", "capacity", "rw-ovfl"
    );
    let mut rows = Vec::new();
    for (b, name) in opts.benchmarks.iter().enumerate() {
        for (k, id) in backends.iter().enumerate() {
            let cell = &cells[&(b, k)];
            let capacity = cell.aborts.get("capacity").copied().unwrap_or(0);
            let _ = writeln!(
                text,
                "{:12} {:8} {:>10} {:>8} {:>7} {:>9.2} {:>9} {:>8}",
                name,
                id.name(),
                cell.cycles,
                cell.commits,
                cell.aborts_total(),
                cell.fallback_pct(),
                capacity,
                cell.lrws_read + cell.lrws_write
            );
            rows.push(Json::obj([
                ("benchmark", Json::from(*name)),
                ("backend", Json::from(id.name())),
                ("cycles", Json::from(cell.cycles)),
                ("commits", Json::from(cell.commits)),
                ("aborts_total", Json::from(cell.aborts_total())),
                (
                    "aborts",
                    Json::Obj(
                        cell.aborts
                            .iter()
                            .map(|(k, n)| (k.to_string(), Json::from(*n)))
                            .collect(),
                    ),
                ),
                ("fallback_commits", Json::from(cell.fallback_commits)),
                ("fallback_pct", Json::Float(cell.fallback_pct())),
                ("lrws_read_capacity_aborts", Json::from(cell.lrws_read)),
                ("lrws_write_capacity_aborts", Json::from(cell.lrws_write)),
            ]));
        }
    }

    // Per-backend summary: totals across benchmarks plus cycles normalized
    // to the first backend in the sweep (geometric mean over benchmarks).
    let baseline = backends.first().map(|b| b.name()).unwrap_or("none");
    let _ = writeln!(
        text,
        "\n--- per-backend totals (cycles normalized to {baseline}, geomean) ---"
    );
    let _ = writeln!(
        text,
        "{:8} {:>12} {:>9} {:>8} {:>9} {:>9} {:>10}",
        "backend", "cycles", "commits", "aborts", "fallback%", "capacity", "norm"
    );
    let mut summary = Vec::new();
    for (k, id) in backends.iter().enumerate() {
        let mut total = Cell::default();
        let mut log_sum = 0.0f64;
        for b in 0..opts.benchmarks.len() {
            let cell = &cells[&(b, k)];
            total.cycles += cell.cycles;
            total.commits += cell.commits;
            total.fallback_commits += cell.fallback_commits;
            total.lrws_read += cell.lrws_read;
            total.lrws_write += cell.lrws_write;
            for (kind, n) in &cell.aborts {
                *total.aborts.entry(*kind).or_default() += *n;
            }
            let base = cells[&(b, 0)].cycles.max(1) as f64;
            log_sum += (cell.cycles.max(1) as f64 / base).ln();
        }
        let norm = if opts.benchmarks.is_empty() {
            1.0
        } else {
            (log_sum / opts.benchmarks.len() as f64).exp()
        };
        let capacity = total.aborts.get("capacity").copied().unwrap_or(0);
        let _ = writeln!(
            text,
            "{:8} {:>12} {:>9} {:>8} {:>9.2} {:>9} {:>10.3}",
            id.name(),
            total.cycles,
            total.commits,
            total.aborts_total(),
            total.fallback_pct(),
            capacity,
            norm
        );
        summary.push(Json::obj([
            ("backend", Json::from(id.name())),
            ("cycles", Json::from(total.cycles)),
            ("commits", Json::from(total.commits)),
            ("aborts_total", Json::from(total.aborts_total())),
            ("fallback_commits", Json::from(total.fallback_commits)),
            ("fallback_pct", Json::Float(total.fallback_pct())),
            ("capacity_aborts", Json::from(capacity)),
            (
                "lrws_capacity_aborts",
                Json::from(total.lrws_read + total.lrws_write),
            ),
            ("norm_cycles_ratio", Json::Float(norm)),
        ]));
    }

    let json = Json::obj([
        ("experiment", Json::from("backend-shootout")),
        ("options", opts_json(opts)),
        (
            "backends",
            Json::arr(backends.iter().map(|b| Json::from(b.name()))),
        ),
        ("retries", Json::from(retries)),
        ("baseline", Json::from(baseline)),
        ("rows", Json::Arr(rows)),
        ("summary", Json::Arr(summary)),
    ]);
    ExperimentOutput::new(text, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SuiteOptions {
        SuiteOptions {
            size: Size::Tiny,
            cores: 4,
            seeds: vec![1],
            retry_sweep: vec![5],
            benchmarks: vec!["mwobject", "arrayswap"],
            workers: 4,
            sim_threads: 1,
            ..SuiteOptions::default()
        }
    }

    #[test]
    fn shootout_covers_the_full_backend_grid() {
        let out = backend_shootout(&tiny());
        assert_eq!(out.failures, 0);
        let Some(Json::Arr(rows)) = out.json.get("rows") else {
            panic!("rows missing");
        };
        // 2 benchmarks x 5 backends.
        assert_eq!(rows.len(), 10);
        for row in rows {
            assert!(matches!(row.get("commits"), Some(Json::Int(c)) if *c > 0));
            if row.get("backend") != Some(&Json::from("lrws")) {
                assert_eq!(
                    row.get("lrws_read_capacity_aborts"),
                    Some(&Json::Int(0)),
                    "{row:?}"
                );
            }
        }
        let Some(Json::Arr(summary)) = out.json.get("summary") else {
            panic!("summary missing");
        };
        assert_eq!(summary.len(), 5);
        // The baseline normalizes to exactly 1.0.
        assert_eq!(summary[0].get("norm_cycles_ratio"), Some(&Json::Float(1.0)));
    }

    #[test]
    fn shootout_is_deterministic_across_worker_counts() {
        let a = backend_shootout(&tiny());
        let b = backend_shootout(&SuiteOptions {
            workers: 1,
            ..tiny()
        });
        assert_eq!(a.text, b.text);
        assert_eq!(a.json.to_pretty(), b.json.to_pretty());
    }

    #[test]
    fn backend_flag_restricts_the_shootout() {
        let out = backend_shootout(&SuiteOptions {
            backends: vec!["clear", "lrws"],
            ..tiny()
        });
        let Some(Json::Arr(rows)) = out.json.get("rows") else {
            panic!("rows missing");
        };
        assert_eq!(rows.len(), 4);
        assert_eq!(out.json.get("baseline"), Some(&Json::from("clear")));
        assert!(!out.text.contains("powertm"));
    }
}
