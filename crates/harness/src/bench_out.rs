//! The single writer behind every `BENCH_*.json` artifact.
//!
//! `fuzz --bench-out`, `run --bench-out` and `serve --bench-out` used to
//! assemble their documents ad hoc; they now all call [`bench_doc`], so
//! every benchmark artifact shares one schema: `name`, `unit`, `seed`,
//! `toolchain`, and a `values` array of rows whose shape is the bench's
//! own. CI's bench-trajectory steps append these files across commits and
//! rely on the stable top-level keys.

use crate::json::Json;

/// Builds a `BENCH_*.json` document in the shared schema.
///
/// `values` rows carry the bench-specific measurements (wall-clock fields
/// are welcome here — BENCH artifacts are trajectories, not goldens);
/// `unit` names what the rows measure (e.g. `"ops/s"`).
pub fn bench_doc(name: &str, unit: &str, seed: &str, values: Vec<Json>) -> Json {
    Json::obj([
        ("name", Json::from(name)),
        ("unit", Json::from(unit)),
        ("seed", Json::from(seed)),
        ("toolchain", Json::from(toolchain())),
        ("values", Json::Arr(values)),
    ])
}

/// The pinned toolchain channel, read from `rust-toolchain.toml` at run
/// time so BENCH rows are attributable to a compiler without a build
/// script. Falls back to `"unknown"` outside a checkout.
pub fn toolchain() -> String {
    for dir in ["rust-toolchain.toml", "../../rust-toolchain.toml"] {
        if let Ok(text) = std::fs::read_to_string(dir) {
            if let Some(channel) = parse_channel(&text) {
                return channel;
            }
        }
    }
    "unknown".to_string()
}

/// Extracts `channel = "..."` from a rust-toolchain.toml body.
fn parse_channel(text: &str) -> Option<String> {
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("channel") {
            let rest = rest.trim_start().strip_prefix('=')?.trim();
            return Some(rest.trim_matches('"').to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_doc_has_the_shared_schema() {
        let doc = bench_doc(
            "serve",
            "ars/s",
            "1",
            vec![Json::obj([("ars_per_sec", Json::Float(1.5))])],
        );
        for key in ["name", "unit", "seed", "toolchain", "values"] {
            assert!(doc.get(key).is_some(), "{key}");
        }
        assert_eq!(doc.get("name"), Some(&Json::from("serve")));
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text).expect("parse"), doc);
    }

    #[test]
    fn channel_parses_from_toml() {
        assert_eq!(
            parse_channel("[toolchain]\nchannel = \"stable\"\n"),
            Some("stable".to_string())
        );
        assert_eq!(parse_channel("[toolchain]\n"), None);
        // The repo's own file resolves to something non-empty.
        assert!(!toolchain().is_empty());
    }
}
