//! The `clear-harness` CLI: list experiments, run them, and manage the
//! golden regression baselines.
//!
//! ```text
//! clear-harness list
//! clear-harness run <name>|all [suite options] [--json]
//! clear-harness golden update [names...]
//! clear-harness check [names...]
//! ```

use clear_harness::experiments::{find, Experiment, EXPERIMENTS};
use clear_harness::{golden, SuiteOptions};

fn usage() -> ! {
    eprintln!(
        "usage:\n  clear-harness list\n  clear-harness run <name>|all \
         [--size tiny|small|medium] [--cores N] [--seeds N]\n      \
         [--sweep full|quick|none] [--bench NAME] [--workers N] [--json]\n  \
         clear-harness golden update [names...]\n  clear-harness check [names...]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("run") => run(&args[1..]),
        Some("golden") if args.get(1).map(String::as_str) == Some("update") => update(&args[2..]),
        Some("check") => check(&args[1..]),
        _ => usage(),
    }
}

fn list() {
    println!("{:16} {:20} {:>7}  about", "name", "artifact", "golden");
    for e in EXPERIMENTS {
        let gated = if e.golden.is_some() { "yes" } else { "-" };
        println!("{:16} {:20} {:>7}  {}", e.name, e.artifact, gated, e.about);
    }
}

fn run(args: &[String]) {
    let Some(name) = args.first() else { usage() };
    let mut rest: Vec<String> = args[1..].to_vec();
    let as_json = rest
        .iter()
        .position(|a| a == "--json")
        .map(|i| rest.remove(i))
        .is_some();
    let opts = SuiteOptions::from_arg_slice(&rest);
    let selected: Vec<&Experiment> = if name == "all" {
        EXPERIMENTS.iter().collect()
    } else {
        vec![find(name).unwrap_or_else(|| {
            eprintln!("unknown experiment {name} (try `clear-harness list`)");
            std::process::exit(2);
        })]
    };
    let mut failures = 0;
    for e in selected {
        let out = (e.run)(&opts);
        if as_json {
            println!("{}", out.json.to_pretty());
        } else {
            print!("{}", out.text);
        }
        failures += out.failures;
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Resolves the gated experiments named on the command line (all of them
/// when the list is empty).
fn gated(names: &[String]) -> Vec<&'static Experiment> {
    let all: Vec<&Experiment> = EXPERIMENTS.iter().filter(|e| e.golden.is_some()).collect();
    if names.is_empty() {
        return all;
    }
    names
        .iter()
        .map(|n| {
            *all.iter().find(|e| e.name == *n).unwrap_or_else(|| {
                eprintln!(
                    "{n} is not a gated experiment (gated: {})",
                    gated_names(&all)
                );
                std::process::exit(2);
            })
        })
        .collect()
}

fn gated_names(all: &[&Experiment]) -> String {
    all.iter().map(|e| e.name).collect::<Vec<_>>().join(", ")
}

fn update(names: &[String]) {
    for e in gated(names) {
        let spec = e.golden.expect("gated");
        let opts = (spec.opts)();
        eprintln!("regenerating golden for {} ({})...", e.name, e.artifact);
        let out = (e.run)(&opts);
        match golden::store(e.name, &out.json) {
            Ok(path) => eprintln!("  wrote {}", path.display()),
            Err(e) => {
                eprintln!("  {e}");
                std::process::exit(1);
            }
        }
    }
}

fn check(names: &[String]) {
    let mut drifted = 0usize;
    for e in gated(names) {
        let spec = e.golden.expect("gated");
        let baseline = match golden::load(e.name) {
            Ok(b) => b,
            Err(msg) => {
                eprintln!("{}: {msg}", e.name);
                eprintln!(
                    "  (run `clear-harness golden update {}` to create it)",
                    e.name
                );
                drifted += 1;
                continue;
            }
        };
        let opts = (spec.opts)();
        eprintln!(
            "checking {} against {}...",
            e.name,
            golden::golden_path(e.name).display()
        );
        let out = (e.run)(&opts);
        let drifts = golden::compare(&baseline, &out.json, &spec.tolerances);
        if drifts.is_empty() {
            eprintln!("  ok");
        } else {
            drifted += 1;
            eprintln!("  {} drift(s):", drifts.len());
            for d in drifts.iter().take(25) {
                eprintln!("    {d}");
            }
            if drifts.len() > 25 {
                eprintln!("    ... {} more", drifts.len() - 25);
            }
        }
    }
    if drifted > 0 {
        eprintln!("\ngolden check FAILED for {drifted} experiment(s)");
        std::process::exit(1);
    }
    eprintln!("\nall golden checks passed");
}
