//! The `clear-harness` CLI: list experiments, run them, and manage the
//! golden regression baselines.
//!
//! ```text
//! clear-harness list
//! clear-harness run <name>|all [suite options] [--json]
//! clear-harness trace <workload> [suite options] [--chrome FILE] [--events N] [--json]
//! clear-harness analyze <workload>|all [suite options] [--plan] [--json]
//! clear-harness golden update [names...]
//! clear-harness check [names...]
//! ```

use clear_harness::experiments::{
    analyze_output, find, fuzz_output, matrix_output, parse_seed, replay_output, Experiment,
    EXPERIMENTS,
};
use clear_harness::json::Json;
use clear_harness::serve::{serve_session, ServeOptions};
use clear_harness::{bench_out, golden, metrics_export, trace_export, SuiteOptions};
use clear_machine::Preset;

fn usage() -> ! {
    eprintln!(
        "usage:\n  clear-harness list\n  clear-harness run <name>|all \
         [--size tiny|small|medium] [--cores N] [--seeds N]\n      \
         [--sweep full|quick|none] [--bench NAME] [--workers N] [--threads N]\n      \
         [--bench-out FILE] [--json]\n  \
         clear-harness serve <workload> [--size ...] [--cores N] [--seeds N] [--threads N]\n      \
         [--ars N] [--batch N] [--queue N] [--rate CYCLES] [--replay FILE]\n      \
         [--snapshot-out FILE] [--prom-out FILE] [--bench-out FILE] [--json]\n  \
         clear-harness trace <workload> [--size ...] [--cores N] [--seeds N]\n      \
         [--chrome FILE] [--arrivals FILE] [--events N] [--json]\n  \
         clear-harness analyze <workload>|all [--size ...] [--cores N] [--seeds N]\n      \
         [--plan] [--json]\n  \
         clear-harness fuzz [--seed S] [--count N] [--cores N] [--workers N] [--json]\n      \
         [--matrix] [--out FILE] [--bench-out FILE] [--repro-dir DIR] [--replay FILE]\n  \
         clear-harness golden update [names...]\n  clear-harness check [names...]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("run") => run(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("trace") => trace(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        Some("fuzz") => fuzz(&args[1..]),
        Some("golden") if args.get(1).map(String::as_str) == Some("update") => update(&args[2..]),
        Some("check") => check(&args[1..]),
        _ => usage(),
    }
}

/// `clear-harness fuzz`: differential fuzzing of the AR semantics — the
/// clear-isa VM vs the full machine under contention vs the static
/// analyzer. The report itself is deterministic; only `BENCH_fuzz.json`
/// carries wall-clock throughput.
fn fuzz(args: &[String]) {
    let mut rest: Vec<String> = args.to_vec();
    let mut take_value = |flag: &str| -> Option<String> {
        let i = rest.iter().position(|a| a == flag)?;
        if i + 1 >= rest.len() {
            eprintln!("missing value for {flag}");
            std::process::exit(2);
        }
        let v = rest.remove(i + 1);
        rest.remove(i);
        Some(v)
    };
    let seed_str = take_value("--seed").unwrap_or_else(|| "0xC1EAR".to_string());
    let count: u64 = take_value("--count")
        .map(|v| v.parse().expect("--count N"))
        .unwrap_or(256);
    let workers: usize = take_value("--workers")
        .map(|v| v.parse::<usize>().expect("--workers N").max(1))
        .unwrap_or_else(clear_harness::pool::default_workers);
    // 0 (the default) keeps each case's own contended thread count; a
    // positive value widens every contended phase to that many cores.
    let cores: usize = take_value("--cores")
        .map(|v| v.parse::<usize>().expect("--cores N"))
        .unwrap_or(0);
    let out_path = take_value("--out");
    let bench_path = take_value("--bench-out");
    let repro_dir = take_value("--repro-dir");
    let replay_path = take_value("--replay");
    let as_json = rest
        .iter()
        .position(|a| a == "--json")
        .map(|i| rest.remove(i))
        .is_some();
    // `--matrix`: run each case through every speculation backend via the
    // backend-differential oracle instead of the single-config oracle.
    let matrix = rest
        .iter()
        .position(|a| a == "--matrix")
        .map(|i| rest.remove(i))
        .is_some();
    if !rest.is_empty() {
        eprintln!("unknown fuzz option {}", rest[0]);
        std::process::exit(2);
    }
    if matrix && (replay_path.is_some() || cores != 0) {
        eprintln!("--matrix runs cases at their own thread counts; drop --replay/--cores");
        std::process::exit(2);
    }

    let started = std::time::Instant::now();
    let (out, cases_run) = match &replay_path {
        Some(path) => {
            let entries = read_corpus(path);
            let n = entries.len() as u64;
            (replay_output(&entries, workers), n)
        }
        None if matrix => (matrix_output(&seed_str, count, workers), count),
        None => (fuzz_output(&seed_str, count, workers, cores), count),
    };
    let wall = started.elapsed();

    if as_json {
        println!("{}", out.json.to_pretty());
    } else {
        print!("{}", out.text);
    }
    if let Some(path) = &out_path {
        write_file(path, &out.json.to_pretty());
        eprintln!("wrote {path}");
    }
    if let Some(path) = &bench_path {
        let steps =
            int_field(&out.json, "machine_instructions") + int_field(&out.json, "reference_steps");
        let secs = wall.as_secs_f64().max(1e-9);
        let row = Json::obj([
            ("cases", Json::from(cases_run)),
            ("workers", Json::from(workers)),
            ("wall_ns", Json::from(wall.as_nanos() as u64)),
            ("steps", Json::from(steps)),
            ("programs_per_sec", Json::Float(cases_run as f64 / secs)),
            ("steps_per_sec", Json::Float(steps as f64 / secs)),
        ]);
        let bench = bench_out::bench_doc(
            if matrix { "fuzz-matrix" } else { "fuzz" },
            "programs/s",
            &seed_str,
            vec![row],
        );
        write_file(path, &bench.to_pretty());
        eprintln!("wrote {path}");
    }
    if let Some(dir) = &repro_dir {
        if let Some(Json::Arr(failures)) = out.json.get("failures") {
            if !failures.is_empty() {
                std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                    eprintln!("cannot create {dir}: {e}");
                    std::process::exit(1);
                });
                for f in failures {
                    let Some(Json::Int(index)) = f.get("index") else {
                        continue;
                    };
                    let path = format!("{dir}/repro-{}-{index}.json", seed_str.replace("0x", ""));
                    write_file(&path, &f.to_pretty());
                    eprintln!("wrote reproducer {path}");
                }
            }
        }
    }
    if out.failures > 0 {
        std::process::exit(1);
    }
}

/// Reads a regression-corpus JSON file: `{"entries": [{"name", "seed",
/// "index"}, ...]}`, with seeds in any `parse_seed` spelling.
fn read_corpus(path: &str) -> Vec<(String, u64, u64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read corpus {path}: {e}");
        std::process::exit(2);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("corpus {path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    let Some(Json::Arr(entries)) = doc.get("entries") else {
        eprintln!("corpus {path}: missing entries array");
        std::process::exit(2);
    };
    entries
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let name = match e.get("name") {
                Some(Json::Str(s)) => s.clone(),
                _ => format!("entry-{i}"),
            };
            let seed = match e.get("seed") {
                Some(Json::Str(s)) => parse_seed(s),
                Some(Json::Int(v)) => *v as u64,
                _ => {
                    eprintln!("corpus {path}: entry {i} has no seed");
                    std::process::exit(2);
                }
            };
            let index = match e.get("index") {
                Some(Json::Int(v)) => *v as u64,
                _ => {
                    eprintln!("corpus {path}: entry {i} has no index");
                    std::process::exit(2);
                }
            };
            (name, seed, index)
        })
        .collect()
}

fn int_field(doc: &Json, key: &str) -> u64 {
    match doc.get(key) {
        Some(Json::Int(v)) => *v as u64,
        _ => 0,
    }
}

fn write_file(path: &str, text: &str) {
    std::fs::write(path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
}

/// `clear-harness serve <workload>`: the bounded-memory trace-replay /
/// open-loop service loop with streaming time-to-commit percentiles.
/// Memory use is independent of `--ars`, so million-AR sessions are fine.
fn serve(args: &[String]) {
    let Some(workload) = args.first() else {
        usage()
    };
    let mut rest: Vec<String> = args[1..].to_vec();
    let mut take_value = |flag: &str| -> Option<String> {
        let i = rest.iter().position(|a| a == flag)?;
        if i + 1 >= rest.len() {
            eprintln!("missing value for {flag}");
            std::process::exit(2);
        }
        let v = rest.remove(i + 1);
        rest.remove(i);
        Some(v)
    };
    let total_ars: u64 = take_value("--ars")
        .map(|v| v.parse().expect("--ars N"))
        .unwrap_or(4096);
    let batch: usize = take_value("--batch")
        .map(|v| v.parse().expect("--batch N"))
        .unwrap_or(256);
    let queue: usize = take_value("--queue")
        .map(|v| v.parse().expect("--queue N"))
        .unwrap_or(512);
    let rate: u64 = take_value("--rate")
        .map(|v| v.parse().expect("--rate CYCLES"))
        .unwrap_or(24);
    let replay_gaps = take_value("--replay").map(|path| read_gaps(&path));
    let snapshot_path = take_value("--snapshot-out");
    let prom_path = take_value("--prom-out");
    let bench_path = take_value("--bench-out");
    let as_json = rest
        .iter()
        .position(|a| a == "--json")
        .map(|i| rest.remove(i))
        .is_some();
    let opts = SuiteOptions::from_arg_slice(&rest);
    let sopts = ServeOptions {
        workload: workload.clone(),
        size: opts.size,
        cores: opts.cores,
        seed: opts.seeds[0],
        total_ars,
        batch,
        queue,
        rate,
        replay_gaps,
        sim_threads: opts.sim_threads,
        snapshot_every: 8,
        max_retries: 5,
    };
    let report = serve_session(&sopts);
    if as_json {
        println!("{}", report.json.to_pretty());
    } else {
        print!("{}", report.text);
    }
    if let Some(path) = &snapshot_path {
        write_file(path, &report.json.to_pretty());
        eprintln!("wrote {path}");
    }
    if let Some(path) = &prom_path {
        let text = metrics_export::prometheus_text(&report.registry.snapshot());
        // Self-validate the exposition before writing, exactly like the
        // Chrome-trace exporter does for its output.
        let summary = metrics_export::validate_prometheus(&text).unwrap_or_else(|e| {
            eprintln!("prometheus exposition failed validation: {e}");
            std::process::exit(1);
        });
        write_file(path, &text);
        eprintln!(
            "wrote {path}: {} samples across {} families (validated)",
            summary.samples, summary.families
        );
    }
    if let Some(path) = &bench_path {
        let doc = bench_out::bench_doc(
            "serve",
            "ars/s",
            &sopts.seed.to_string(),
            report.trajectory.clone(),
        );
        write_file(path, &doc.to_pretty());
        eprintln!("wrote {path}");
    }
}

/// Reads a `trace --arrivals` document (`{"workload", "seed", "gaps"}`)
/// back into the gap list `serve --replay` cycles through.
fn read_gaps(path: &str) -> Vec<u64> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read arrivals {path}: {e}");
        std::process::exit(2);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("arrivals {path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    let Some(Json::Arr(gaps)) = doc.get("gaps") else {
        eprintln!("arrivals {path}: missing gaps array");
        std::process::exit(2);
    };
    let gaps: Vec<u64> = gaps
        .iter()
        .filter_map(|g| match g {
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        })
        .collect();
    if gaps.is_empty() {
        eprintln!("arrivals {path}: no usable gaps");
        std::process::exit(2);
    }
    gaps
}

/// `clear-harness trace <workload>`: run one benchmark with tracing on,
/// print the timeline and derived metrics, and optionally export the
/// stream as Chrome Trace Event Format JSON (Perfetto-loadable).
fn trace(args: &[String]) {
    let Some(workload) = args.first() else {
        usage()
    };
    let mut rest: Vec<String> = args[1..].to_vec();
    let mut take_value = |flag: &str| -> Option<String> {
        let i = rest.iter().position(|a| a == flag)?;
        if i + 1 >= rest.len() {
            eprintln!("missing value for {flag}");
            std::process::exit(2);
        }
        let v = rest.remove(i + 1);
        rest.remove(i);
        Some(v)
    };
    let chrome_path = take_value("--chrome");
    let arrivals_path = take_value("--arrivals");
    let events_limit: usize = take_value("--events")
        .map(|v| v.parse().expect("--events N"))
        .unwrap_or(400);
    let as_json = rest
        .iter()
        .position(|a| a == "--json")
        .map(|i| rest.remove(i))
        .is_some();
    let opts = SuiteOptions::from_arg_slice(&rest);
    let seed = opts.seeds[0];
    let m = trace_export::run_traced(workload, Preset::C, opts.cores, 5, opts.size, seed);
    let metrics = trace_export::derive_metrics(&m, 8);

    if let Some(path) = &chrome_path {
        let doc = trace_export::chrome_trace(&m, workload, seed);
        let text = doc.to_pretty();
        // Re-validating the written bytes through the in-tree parser keeps
        // the export honest: CI's smoke step relies on this check.
        let summary = trace_export::validate_chrome_trace(&text).unwrap_or_else(|e| {
            eprintln!("exported chrome trace failed validation: {e}");
            std::process::exit(1);
        });
        std::fs::write(path, &text).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "wrote {path}: {} chrome events across {} cores (validated)",
            summary.events, summary.cores
        );
    }

    if let Some(path) = &arrivals_path {
        let doc = trace_export::arrival_gaps(&m, workload, seed);
        let gaps = match doc.get("gaps") {
            Some(Json::Arr(g)) => g.len(),
            _ => 0,
        };
        write_file(path, &doc.to_pretty());
        eprintln!("wrote {path}: {gaps} inter-arrival gaps (serve --replay input)");
    }

    if as_json {
        let doc = Json::obj([
            ("benchmark", Json::from(workload.as_str())),
            ("cores", Json::from(opts.cores)),
            ("seed", Json::from(seed)),
            ("events_recorded", Json::from(m.trace().recorded())),
            ("events_dropped", Json::from(m.trace().dropped())),
            (
                "digest",
                Json::from(trace_export::digest_hex(m.trace().digest())),
            ),
            ("derived", metrics.to_json()),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        println!(
            "=== trace of {workload} under CLEAR ({} cores, {} input, seed {seed}) ===\n",
            opts.cores,
            clear_harness::experiments::size_str(opts.size),
        );
        print!("{}", trace_export::timeline_text(&m, events_limit));
        println!();
        print!("{}", metrics.to_text());
    }
}

/// `clear-harness analyze <workload>|all`: ahead-of-time static analysis
/// of every AR a workload registers — verdicts, footprint bounds and
/// lints — without executing anything. Exits non-zero when a lint fires.
fn analyze(args: &[String]) {
    let Some(workload) = args.first() else {
        usage()
    };
    let mut rest: Vec<String> = args[1..].to_vec();
    let as_json = rest
        .iter()
        .position(|a| a == "--json")
        .map(|i| rest.remove(i))
        .is_some();
    // `--plan`: also emit the analyzer's StaticPlans (fast-path lock
    // sets, written subsets, root slots, per-backend budget fit).
    let with_plans = rest
        .iter()
        .position(|a| a == "--plan")
        .map(|i| rest.remove(i))
        .is_some();
    let opts = SuiteOptions::from_arg_slice(&rest);
    let out = analyze_output(workload, &opts, with_plans).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if as_json {
        println!("{}", out.json.to_pretty());
    } else {
        print!("{}", out.text);
    }
    if out.failures > 0 {
        std::process::exit(1);
    }
}

fn list() {
    println!("{:16} {:20} {:>7}  about", "name", "artifact", "golden");
    for e in EXPERIMENTS {
        let gated = if e.golden.is_some() { "yes" } else { "-" };
        println!("{:16} {:20} {:>7}  {}", e.name, e.artifact, gated, e.about);
    }
}

fn run(args: &[String]) {
    let Some(name) = args.first() else { usage() };
    let mut rest: Vec<String> = args[1..].to_vec();
    let mut take_value = |flag: &str| -> Option<String> {
        let i = rest.iter().position(|a| a == flag)?;
        if i + 1 >= rest.len() {
            eprintln!("missing value for {flag}");
            std::process::exit(2);
        }
        let v = rest.remove(i + 1);
        rest.remove(i);
        Some(v)
    };
    let bench_path = take_value("--bench-out");
    let as_json = rest
        .iter()
        .position(|a| a == "--json")
        .map(|i| rest.remove(i))
        .is_some();
    let opts = SuiteOptions::from_arg_slice(&rest);
    let selected: Vec<&Experiment> = if name == "all" {
        EXPERIMENTS.iter().collect()
    } else {
        vec![find(name).unwrap_or_else(|| {
            eprintln!("unknown experiment {name} (try `clear-harness list`)");
            std::process::exit(2);
        })]
    };
    let mut failures = 0;
    let mut curve: Vec<Json> = Vec::new();
    for e in selected {
        let out = (e.run)(&opts);
        if as_json {
            // The metrics side-channel is appended to the *printed*
            // document only, never to the golden-compared `out.json`.
            let mut doc = out.json.clone();
            if let (Json::Obj(fields), Some(m)) = (&mut doc, &out.metrics) {
                fields.push(("metrics".to_string(), m.clone()));
            }
            println!("{}", doc.to_pretty());
        } else {
            print!("{}", out.text);
        }
        curve.extend(throughput_curve(&out.json));
        failures += out.failures;
    }
    if let Some(path) = &bench_path {
        let mut rows = curve;
        for row in &mut rows {
            if let Json::Obj(fields) = row {
                fields.insert(0, ("experiment".to_string(), Json::from(name.as_str())));
            }
        }
        let bench = bench_out::bench_doc("sim", "steps/s", &opts.seeds[0].to_string(), rows);
        write_file(path, &bench.to_pretty());
        eprintln!("wrote {path}");
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Extracts a steps-per-second-by-core-count curve from an experiment
/// document for `BENCH_sim.json`: every row carrying both a `cores` and a
/// `steps_per_sec` field contributes one point (today that is the
/// `scaling-wide` ladder; other experiments simply contribute nothing).
fn throughput_curve(doc: &Json) -> Vec<Json> {
    let Some(Json::Arr(rows)) = doc.get("rows") else {
        return Vec::new();
    };
    rows.iter()
        .filter(|r| r.get("cores").is_some() && r.get("steps_per_sec").is_some())
        .map(|r| {
            let f = |k: &str| r.get(k).cloned().unwrap_or(Json::Null);
            Json::obj([
                ("cores", f("cores")),
                ("steps", f("steps")),
                ("wall_ns", f("wall_ns")),
                ("steps_per_sec", f("steps_per_sec")),
            ])
        })
        .collect()
}

/// Resolves the gated experiments named on the command line (all of them
/// when the list is empty).
fn gated(names: &[String]) -> Vec<&'static Experiment> {
    let all: Vec<&Experiment> = EXPERIMENTS.iter().filter(|e| e.golden.is_some()).collect();
    if names.is_empty() {
        return all;
    }
    names
        .iter()
        .map(|n| {
            *all.iter().find(|e| e.name == *n).unwrap_or_else(|| {
                eprintln!(
                    "{n} is not a gated experiment (gated: {})",
                    gated_names(&all)
                );
                std::process::exit(2);
            })
        })
        .collect()
}

fn gated_names(all: &[&Experiment]) -> String {
    all.iter().map(|e| e.name).collect::<Vec<_>>().join(", ")
}

fn update(names: &[String]) {
    for e in gated(names) {
        let spec = e.golden.expect("gated");
        let opts = (spec.opts)();
        eprintln!("regenerating golden for {} ({})...", e.name, e.artifact);
        let out = (e.run)(&opts);
        match golden::store(e.name, &out.json) {
            Ok(path) => eprintln!("  wrote {}", path.display()),
            Err(e) => {
                eprintln!("  {e}");
                std::process::exit(1);
            }
        }
    }
}

fn check(names: &[String]) {
    let mut drifted = 0usize;
    for e in gated(names) {
        let spec = e.golden.expect("gated");
        let baseline = match golden::load(e.name) {
            Ok(b) => b,
            Err(msg) => {
                eprintln!("{}: {msg}", e.name);
                eprintln!(
                    "  (run `clear-harness golden update {}` to create it)",
                    e.name
                );
                drifted += 1;
                continue;
            }
        };
        let opts = (spec.opts)();
        eprintln!(
            "checking {} against {}...",
            e.name,
            golden::golden_path(e.name).display()
        );
        let out = (e.run)(&opts);
        let drifts = golden::compare(&baseline, &out.json, &spec.tolerances);
        if drifts.is_empty() {
            eprintln!("  ok");
        } else {
            drifted += 1;
            eprintln!("  {} drift(s):", drifts.len());
            for d in drifts.iter().take(25) {
                eprintln!("    {d}");
            }
            if drifts.len() > 25 {
                eprintln!("    ... {} more", drifts.len() - 25);
            }
        }
    }
    if drifted > 0 {
        eprintln!("\ngolden check FAILED for {drifted} experiment(s)");
        std::process::exit(1);
    }
    eprintln!("\nall golden checks passed");
}
