//! Consumers of the machine's execution trace: a Chrome Trace Event
//! Format exporter (loadable in Perfetto / `chrome://tracing`), a
//! deterministic plain-text timeline renderer, and a per-AR derived
//! metrics pass (attempt-latency histograms by retry mode, time to first
//! commit, conflict hot lines).
//!
//! Everything here is a pure function of the recorded
//! [`Trace`](clear_machine::Trace), so all three outputs are
//! byte-reproducible across runs and hosts. The exporter emits through
//! the in-tree [`Json`] writer; the round trip through [`Json::parse`]
//! doubles as a structural self-check in tests and in CI's trace smoke
//! step.

use crate::json::Json;
use clear_core::RetryMode;
use clear_machine::{Machine, MachineConfig, Preset, TraceEvent};
use clear_workloads::{by_name, Size};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Runs one benchmark with tracing enabled and returns the finished
/// machine, whose [`Machine::trace`] the exporters below consume.
///
/// # Panics
///
/// Panics if the benchmark name is unknown, the run times out, or the
/// workload's atomicity invariant fails — tracing a broken run would
/// report events of an execution the harness rejects everywhere else.
pub fn run_traced(
    name: &str,
    preset: Preset,
    cores: usize,
    max_retries: u32,
    size: Size,
    seed: u64,
) -> Machine {
    let workload = by_name(name, size, seed).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let mut cfg: MachineConfig = preset.config(cores, max_retries);
    cfg.seed = seed;
    let mut machine = Machine::new(cfg, workload);
    machine.enable_tracing();
    let stats = machine.run();
    assert!(!stats.timed_out, "{name}/{preset}: traced run timed out");
    machine
        .workload()
        .validate(machine.memory())
        .unwrap_or_else(|e| panic!("{name}/{preset}: invariant violated: {e}"));
    machine
}

/// Exports the trace's AR arrival process as an inter-arrival gap
/// document for `clear-harness serve --replay`: every `ArFetched` cycle
/// across all cores, globally sorted, reduced to consecutive deltas. The
/// recorded workload's own fetch schedule thereby becomes a replayable
/// open-loop arrival trace (`{"workload", "seed", "gaps": [...]}`).
pub fn arrival_gaps(m: &Machine, benchmark: &str, seed: u64) -> Json {
    let mut cycles: Vec<u64> = m
        .trace()
        .records()
        .filter(|r| matches!(r.event, TraceEvent::ArFetched { .. }))
        .map(|r| r.cycle)
        .collect();
    cycles.sort_unstable();
    let gaps: Vec<Json> = cycles.windows(2).map(|w| Json::from(w[1] - w[0])).collect();
    Json::obj([
        ("workload", Json::from(benchmark)),
        ("seed", Json::from(seed)),
        ("gaps", Json::Arr(gaps)),
    ])
}

/// Exports the recorded trace as a Chrome Trace Event Format document.
///
/// Attempts become duration slices (`ph:"B"`/`ph:"E"`) on one thread
/// track per core; every other event is a thread-scoped instant
/// (`ph:"i"`). Timestamps are simulated cycles used directly as `ts`
/// values, so per-core timestamps are monotonically non-decreasing by
/// construction (each core's clock only advances).
pub fn chrome_trace(m: &Machine, benchmark: &str, seed: u64) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let mut cores_seen: Vec<usize> = m.trace().records().map(|r| r.core).collect();
    cores_seen.sort_unstable();
    cores_seen.dedup();
    for &core in &cores_seen {
        events.push(Json::obj([
            ("name", Json::from("thread_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(0u64)),
            ("tid", Json::from(core)),
            (
                "args",
                Json::obj([("name", Json::from(format!("core{core}")))]),
            ),
        ]));
    }
    // Per-core stack of open attempt slices, so every `E` carries the
    // matching `B`'s name even though abort events do not repeat the mode.
    let mut open: HashMap<usize, Vec<String>> = HashMap::new();
    let mut last_cycle: HashMap<usize, u64> = HashMap::new();
    let common = |name: String, ph: &str, cycle: u64, core: usize| {
        vec![
            ("name".to_string(), Json::from(name)),
            ("ph".to_string(), Json::from(ph)),
            ("ts".to_string(), Json::from(cycle)),
            ("pid".to_string(), Json::from(0u64)),
            ("tid".to_string(), Json::from(core)),
        ]
    };
    let instant = |name: String, cycle: u64, core: usize, args: Json| {
        let mut pairs = common(name, "i", cycle, core);
        pairs.push(("s".to_string(), Json::from("t")));
        pairs.push(("args".to_string(), args));
        Json::Obj(pairs)
    };
    for r in m.trace().records() {
        last_cycle.insert(r.core, r.cycle);
        match &r.event {
            TraceEvent::AttemptStart { mode } => {
                let name = format!("attempt {mode}");
                let mut pairs = common(name.clone(), "B", r.cycle, r.core);
                pairs.push((
                    "args".to_string(),
                    Json::obj([("mode", Json::from(mode.to_string()))]),
                ));
                events.push(Json::Obj(pairs));
                open.entry(r.core).or_default().push(name);
            }
            TraceEvent::Commit { mode, retries } => {
                let args = Json::obj([
                    ("outcome", Json::from("commit")),
                    ("mode", Json::from(mode.to_string())),
                    ("retries", Json::from(*retries)),
                ]);
                match open.get_mut(&r.core).and_then(Vec::pop) {
                    Some(name) => {
                        let mut pairs = common(name, "E", r.cycle, r.core);
                        pairs.push(("args".to_string(), args));
                        events.push(Json::Obj(pairs));
                    }
                    None => events.push(instant("commit".to_string(), r.cycle, r.core, args)),
                }
            }
            TraceEvent::Abort { kind, span } => {
                let args = Json::obj([
                    ("outcome", Json::from("abort")),
                    ("kind", Json::from(kind.to_string())),
                    ("span_cycles", Json::from(*span)),
                ]);
                match open.get_mut(&r.core).and_then(Vec::pop) {
                    Some(name) => {
                        let mut pairs = common(name, "E", r.cycle, r.core);
                        pairs.push(("args".to_string(), args));
                        events.push(Json::Obj(pairs));
                    }
                    None => events.push(instant("abort".to_string(), r.cycle, r.core, args)),
                }
            }
            TraceEvent::ArFetched { ar } => {
                events.push(instant(
                    format!("fetch {ar}"),
                    r.cycle,
                    r.core,
                    Json::obj([("ar", Json::from(ar.to_string()))]),
                ));
            }
            TraceEvent::ConflictReceived { line, aggressor } => {
                events.push(instant(
                    "conflict".to_string(),
                    r.cycle,
                    r.core,
                    Json::obj([
                        ("line", Json::from(line.to_string())),
                        ("aggressor", Json::from(*aggressor)),
                    ]),
                ));
            }
            TraceEvent::EnterFailedMode => {
                events.push(instant(
                    "enter-failed-mode".to_string(),
                    r.cycle,
                    r.core,
                    Json::obj(Vec::<(&str, Json)>::new()),
                ));
            }
            TraceEvent::Decision {
                ar,
                mode,
                footprint,
                immutable,
            } => {
                events.push(instant(
                    format!("decide {ar}"),
                    r.cycle,
                    r.core,
                    Json::obj([
                        ("ar", Json::from(ar.to_string())),
                        ("mode", Json::from(mode.to_string())),
                        ("footprint", Json::from(*footprint)),
                        ("immutable", Json::from(*immutable)),
                    ]),
                ));
            }
            TraceEvent::DiscoveryElided { ar, eager } => {
                events.push(instant(
                    format!("elide-discovery {ar}"),
                    r.cycle,
                    r.core,
                    Json::obj([
                        ("ar", Json::from(ar.to_string())),
                        ("eager", Json::from(*eager)),
                    ]),
                ));
            }
            TraceEvent::LockAcquired { line, wait_cycles } => {
                events.push(instant(
                    "lock".to_string(),
                    r.cycle,
                    r.core,
                    Json::obj([
                        ("line", Json::from(line.to_string())),
                        ("wait_cycles", Json::from(*wait_cycles)),
                    ]),
                ));
            }
        }
    }
    // A truncated ring can leave attempts without their closing event;
    // close them at the core's last seen cycle so the document stays
    // balanced for slice-based viewers.
    let mut dangling: Vec<usize> = open
        .iter()
        .filter(|(_, stack)| !stack.is_empty())
        .map(|(&core, _)| core)
        .collect();
    dangling.sort_unstable();
    for core in dangling {
        let cycle = last_cycle.get(&core).copied().unwrap_or(0);
        while let Some(name) = open.get_mut(&core).and_then(Vec::pop) {
            let mut pairs = common(name, "E", cycle, core);
            pairs.push((
                "args".to_string(),
                Json::obj([("outcome", Json::from("truncated"))]),
            ));
            events.push(Json::Obj(pairs));
        }
    }
    Json::obj([
        ("displayTimeUnit", Json::from("ns")),
        (
            "otherData",
            Json::obj([
                ("benchmark", Json::from(benchmark)),
                ("seed", Json::from(seed)),
                ("events_recorded", Json::from(m.trace().recorded())),
                ("events_dropped", Json::from(m.trace().dropped())),
                ("digest", Json::from(digest_hex(m.trace().digest()))),
            ]),
        ),
        ("traceEvents", Json::Arr(events)),
    ])
}

/// Renders the first `limit` retained records as a fixed-width timeline,
/// followed by a recorded/dropped/digest footer.
pub fn timeline_text(m: &Machine, limit: usize) -> String {
    let mut text = String::new();
    let total = m.trace().len();
    let shown = total.min(limit);
    let _ = writeln!(text, "{:>10}  {:6}  event", "cycle", "core");
    for r in m.trace().records().take(shown) {
        let _ = writeln!(text, "{:>10}  core{:<2}  {}", r.cycle, r.core, r.event);
    }
    if total > shown {
        let _ = writeln!(text, "... {} more retained records", total - shown);
    }
    let _ = writeln!(
        text,
        "{} events recorded, {} dropped by the ring, digest {}",
        m.trace().recorded(),
        m.trace().dropped(),
        digest_hex(m.trace().digest()),
    );
    text
}

/// A `u64` digest in its canonical textual form (16 hex digits): JSON
/// integers are `i64`, so digests travel as strings.
pub fn digest_hex(d: u64) -> String {
    format!("{d:016x}")
}

/// Per-mode attempt-latency aggregate.
#[derive(Clone, Debug, Default)]
pub struct ModeLatency {
    /// Attempts started in this mode.
    pub attempts: u64,
    /// Attempts that committed.
    pub commits: u64,
    /// Attempts that aborted.
    pub aborts: u64,
    /// Sum of finished-attempt latencies in cycles.
    pub total_cycles: u64,
    /// Shortest finished attempt.
    pub min_cycles: u64,
    /// Longest finished attempt.
    pub max_cycles: u64,
    /// Log2-bucketed latency histogram: bucket `i` counts finished
    /// attempts with latency in `[2^i, 2^(i+1))` (bucket 0 also holds
    /// zero-cycle attempts).
    pub hist_log2: [u64; 32],
}

impl ModeLatency {
    fn add(&mut self, latency: u64) {
        self.total_cycles += latency;
        if self.commits + self.aborts == 1 || latency < self.min_cycles {
            self.min_cycles = latency;
        }
        self.max_cycles = self.max_cycles.max(latency);
        let bucket = (64 - latency.leading_zeros()).saturating_sub(1).min(31);
        self.hist_log2[bucket as usize] += 1;
    }
}

/// Per-AR outcome aggregate.
#[derive(Clone, Debug, Default)]
pub struct ArOutcome {
    /// Invocations fetched.
    pub fetched: u64,
    /// Invocations committed.
    pub commits: u64,
    /// Cycle of the first commit of this AR anywhere in the run.
    pub first_commit_cycle: Option<u64>,
    /// Sum of fetch-to-commit latencies.
    pub total_fetch_to_commit: u64,
}

/// One contended cacheline.
#[derive(Clone, Debug)]
pub struct HotLine {
    /// The line, rendered as the machine prints it (`L0x…`).
    pub line: String,
    /// Conflicts received for this line.
    pub conflicts: u64,
    /// The core that caused the most of them (lowest id wins ties).
    pub top_aggressor: usize,
}

/// Derived metrics computed in one pass over the trace.
#[derive(Clone, Debug)]
pub struct DerivedMetrics {
    /// Latency aggregates in fixed mode order (speculative, NS-CL, S-CL,
    /// fallback).
    pub by_mode: [(RetryMode, ModeLatency); 4],
    /// Per-AR outcomes, ordered by AR id.
    pub per_ar: Vec<(u32, ArOutcome)>,
    /// The `top_k` most conflicted lines, most contended first.
    pub hot_lines: Vec<HotLine>,
}

const MODE_ORDER: [RetryMode; 4] = [
    RetryMode::SpeculativeRetry,
    RetryMode::NsCl,
    RetryMode::SCl,
    RetryMode::Fallback,
];

/// Computes the derived metrics for a finished traced run.
pub fn derive_metrics(m: &Machine, top_k: usize) -> DerivedMetrics {
    let mode_slot = |mode: RetryMode| MODE_ORDER.iter().position(|&o| o == mode).expect("mode");
    let mut by_mode: [(RetryMode, ModeLatency); 4] =
        MODE_ORDER.map(|mode| (mode, ModeLatency::default()));
    // Per-core in-flight state: the running attempt and the fetched AR.
    let mut attempt: HashMap<usize, (RetryMode, u64)> = HashMap::new();
    let mut fetched: HashMap<usize, (u32, u64)> = HashMap::new();
    let mut per_ar: HashMap<u32, ArOutcome> = HashMap::new();
    let mut lines: HashMap<u64, (String, u64, HashMap<usize, u64>)> = HashMap::new();
    for r in m.trace().records() {
        match &r.event {
            TraceEvent::ArFetched { ar } => {
                fetched.insert(r.core, (ar.0, r.cycle));
                per_ar.entry(ar.0).or_default().fetched += 1;
            }
            TraceEvent::AttemptStart { mode } => {
                attempt.insert(r.core, (*mode, r.cycle));
                by_mode[mode_slot(*mode)].1.attempts += 1;
            }
            TraceEvent::Abort { kind: _, span } => {
                if let Some((mode, _)) = attempt.remove(&r.core) {
                    let agg = &mut by_mode[mode_slot(mode)].1;
                    agg.aborts += 1;
                    agg.add(*span);
                }
            }
            TraceEvent::Commit { .. } => {
                if let Some((mode, start)) = attempt.remove(&r.core) {
                    let agg = &mut by_mode[mode_slot(mode)].1;
                    agg.commits += 1;
                    agg.add(r.cycle.saturating_sub(start));
                }
                if let Some((ar, fetch_cycle)) = fetched.remove(&r.core) {
                    let slot = per_ar.entry(ar).or_default();
                    slot.commits += 1;
                    slot.total_fetch_to_commit += r.cycle.saturating_sub(fetch_cycle);
                    slot.first_commit_cycle = Some(match slot.first_commit_cycle {
                        Some(c) => c.min(r.cycle),
                        None => r.cycle,
                    });
                }
            }
            TraceEvent::ConflictReceived { line, aggressor } => {
                let slot = lines
                    .entry(line.0)
                    .or_insert_with(|| (line.to_string(), 0, HashMap::new()));
                slot.1 += 1;
                *slot.2.entry(*aggressor).or_default() += 1;
            }
            _ => {}
        }
    }
    let mut per_ar: Vec<(u32, ArOutcome)> = per_ar.into_iter().collect();
    per_ar.sort_unstable_by_key(|(ar, _)| *ar);
    let mut hot: Vec<(u64, String, u64, HashMap<usize, u64>)> = lines
        .into_iter()
        .map(|(addr, (text, count, aggs))| (addr, text, count, aggs))
        .collect();
    // Most contended first; the address breaks ties deterministically.
    hot.sort_unstable_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    hot.truncate(top_k);
    let hot_lines = hot
        .into_iter()
        .map(|(_, line, conflicts, aggs)| {
            let top_aggressor = aggs
                .iter()
                .map(|(&core, &n)| (n, std::cmp::Reverse(core)))
                .max()
                .map(|(_, std::cmp::Reverse(core))| core)
                .expect("nonzero conflicts");
            HotLine {
                line,
                conflicts,
                top_aggressor,
            }
        })
        .collect();
    DerivedMetrics {
        by_mode,
        per_ar,
        hot_lines,
    }
}

impl DerivedMetrics {
    /// The metrics as an insertion-ordered JSON document (the shape the
    /// `trace` subcommand embeds in its `--json` output).
    pub fn to_json(&self) -> Json {
        let modes = self.by_mode.iter().map(|(mode, agg)| {
            let finished = agg.commits + agg.aborts;
            let mean = if finished == 0 {
                0.0
            } else {
                agg.total_cycles as f64 / finished as f64
            };
            let top = agg
                .hist_log2
                .iter()
                .rposition(|&n| n > 0)
                .map_or(0, |i| i + 1);
            Json::obj([
                ("mode", Json::from(mode.to_string())),
                ("attempts", Json::from(agg.attempts)),
                ("commits", Json::from(agg.commits)),
                ("aborts", Json::from(agg.aborts)),
                ("min_cycles", Json::from(agg.min_cycles)),
                ("max_cycles", Json::from(agg.max_cycles)),
                ("mean_cycles", Json::Float(mean)),
                (
                    "hist_log2",
                    Json::arr(agg.hist_log2[..top].iter().map(|&n| Json::from(n))),
                ),
            ])
        });
        let ars = self.per_ar.iter().map(|(ar, o)| {
            let mean = if o.commits == 0 {
                0.0
            } else {
                o.total_fetch_to_commit as f64 / o.commits as f64
            };
            Json::obj([
                ("ar", Json::from(format!("AR{ar}"))),
                ("fetched", Json::from(o.fetched)),
                ("commits", Json::from(o.commits)),
                (
                    "first_commit_cycle",
                    o.first_commit_cycle.map_or(Json::Null, Json::from),
                ),
                ("mean_fetch_to_commit", Json::Float(mean)),
            ])
        });
        let hot = self.hot_lines.iter().map(|h| {
            Json::obj([
                ("line", Json::from(h.line.clone())),
                ("conflicts", Json::from(h.conflicts)),
                ("top_aggressor", Json::from(h.top_aggressor)),
            ])
        });
        Json::obj([
            ("attempt_latency_by_mode", Json::arr(modes)),
            ("per_ar", Json::arr(ars)),
            ("hot_lines", Json::arr(hot)),
        ])
    }

    /// A compact human-readable rendering of [`DerivedMetrics::to_json`].
    pub fn to_text(&self) -> String {
        let mut text = String::new();
        let _ = writeln!(text, "--- attempt latency by mode ---");
        let _ = writeln!(
            text,
            "{:12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
            "mode", "attempts", "commits", "aborts", "min", "max", "mean"
        );
        for (mode, agg) in &self.by_mode {
            if agg.attempts == 0 {
                continue;
            }
            let finished = agg.commits + agg.aborts;
            let mean = if finished == 0 {
                0.0
            } else {
                agg.total_cycles as f64 / finished as f64
            };
            let _ = writeln!(
                text,
                "{:12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10.1}",
                mode.to_string(),
                agg.attempts,
                agg.commits,
                agg.aborts,
                agg.min_cycles,
                agg.max_cycles,
                mean
            );
        }
        let _ = writeln!(text, "--- per AR ---");
        let _ = writeln!(
            text,
            "{:6} {:>9} {:>9} {:>14} {:>16}",
            "ar", "fetched", "commits", "first-commit", "mean-to-commit"
        );
        for (ar, o) in &self.per_ar {
            let mean = if o.commits == 0 {
                0.0
            } else {
                o.total_fetch_to_commit as f64 / o.commits as f64
            };
            let first = o
                .first_commit_cycle
                .map_or("-".to_string(), |c| c.to_string());
            let _ = writeln!(
                text,
                "{:6} {:>9} {:>9} {:>14} {:>16.1}",
                format!("AR{ar}"),
                o.fetched,
                o.commits,
                first,
                mean
            );
        }
        if !self.hot_lines.is_empty() {
            let _ = writeln!(text, "--- conflict hot lines ---");
            let _ = writeln!(
                text,
                "{:12} {:>10} {:>14}",
                "line", "conflicts", "top aggressor"
            );
            for h in &self.hot_lines {
                let _ = writeln!(
                    text,
                    "{:12} {:>10} {:>14}",
                    h.line,
                    h.conflicts,
                    format!("core{}", h.top_aggressor)
                );
            }
        }
        text
    }
}

/// Structural validation of an exported Chrome-trace document, used by
/// the `trace` subcommand after writing the file and by CI's smoke step:
/// the in-tree parser must accept it, every participating core must have
/// at least one event, and per-core timestamps must be monotonically
/// non-decreasing.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceSummary, String> {
    let doc = Json::parse(text)?;
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err("missing traceEvents array".to_string());
    };
    let mut last_ts: HashMap<i64, i64> = HashMap::new();
    let mut per_core: HashMap<i64, u64> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        let Some(Json::Str(ph)) = e.get("ph") else {
            return Err(format!("event {i}: missing ph"));
        };
        let Some(Json::Int(tid)) = e.get("tid") else {
            return Err(format!("event {i}: missing tid"));
        };
        if ph == "M" {
            continue;
        }
        let Some(Json::Int(ts)) = e.get("ts") else {
            return Err(format!("event {i}: missing ts"));
        };
        if let Some(prev) = last_ts.get(tid) {
            if ts < prev {
                return Err(format!(
                    "event {i}: core {tid} timestamp went backwards ({prev} -> {ts})"
                ));
            }
        }
        last_ts.insert(*tid, *ts);
        *per_core.entry(*tid).or_default() += 1;
    }
    if per_core.is_empty() {
        return Err("no timed events".to_string());
    }
    if let Some((&core, _)) = per_core.iter().find(|(_, &n)| n == 0) {
        return Err(format!("core {core} has no events"));
    }
    Ok(ChromeTraceSummary {
        events: events.len(),
        cores: per_core.len(),
    })
}

/// What [`validate_chrome_trace`] measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Total events in the document (including metadata records).
    pub events: usize,
    /// Distinct cores with at least one timed event.
    pub cores: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced() -> Machine {
        run_traced("arrayswap", Preset::C, 8, 5, Size::Tiny, 1)
    }

    #[test]
    fn chrome_export_roundtrips_and_validates() {
        let m = traced();
        let doc = chrome_trace(&m, "arrayswap", 1);
        let text = doc.to_pretty();
        let summary = validate_chrome_trace(&text).expect("valid document");
        assert!(summary.events > 0);
        assert!(summary.cores >= 2, "8-core arrayswap must involve cores");
        // Round trip through the in-tree parser is lossless.
        assert_eq!(Json::parse(&text).expect("parse"), doc);
    }

    #[test]
    fn chrome_slices_balance_per_core() {
        let m = traced();
        let doc = chrome_trace(&m, "arrayswap", 1);
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("missing traceEvents");
        };
        let mut depth: HashMap<i64, i64> = HashMap::new();
        for e in events {
            let Some(Json::Int(tid)) = e.get("tid") else {
                panic!("missing tid");
            };
            match e.get("ph") {
                Some(Json::Str(ph)) if ph == "B" => *depth.entry(*tid).or_default() += 1,
                Some(Json::Str(ph)) if ph == "E" => {
                    let d = depth.entry(*tid).or_default();
                    *d -= 1;
                    assert!(*d >= 0, "E without B on core {tid}");
                }
                _ => {}
            }
        }
        assert!(depth.values().all(|&d| d == 0), "unbalanced slices");
    }

    #[test]
    fn derived_metrics_are_consistent_with_stats() {
        let m = traced();
        let d = derive_metrics(&m, 8);
        let commits: u64 = d.by_mode.iter().map(|(_, a)| a.commits).sum();
        assert!(commits > 0);
        // Histogram mass equals finished attempts.
        for (_, agg) in &d.by_mode {
            let mass: u64 = agg.hist_log2.iter().sum();
            assert_eq!(mass, agg.commits + agg.aborts);
        }
        // Every AR that committed has a first-commit cycle.
        for (ar, o) in &d.per_ar {
            if o.commits > 0 {
                assert!(o.first_commit_cycle.is_some(), "AR{ar}");
            }
            assert!(o.commits <= o.fetched, "AR{ar}");
        }
        // Hot lines come most-contended first.
        for pair in d.hot_lines.windows(2) {
            assert!(pair[0].conflicts >= pair[1].conflicts);
        }
        let json = d.to_json();
        assert!(json.get("attempt_latency_by_mode").is_some());
        assert!(!d.to_text().is_empty());
    }

    #[test]
    fn timeline_truncates_at_limit() {
        let m = traced();
        let full = timeline_text(&m, usize::MAX);
        let short = timeline_text(&m, 5);
        assert!(short.len() < full.len());
        assert!(short.contains("more retained records"));
        assert!(short.contains("digest"));
    }

    #[test]
    fn validator_rejects_backwards_timestamps() {
        let doc = Json::obj([(
            "traceEvents",
            Json::arr([
                Json::obj([
                    ("name", Json::from("a")),
                    ("ph", Json::from("i")),
                    ("ts", Json::from(10u64)),
                    ("pid", Json::from(0u64)),
                    ("tid", Json::from(1u64)),
                ]),
                Json::obj([
                    ("name", Json::from("b")),
                    ("ph", Json::from("i")),
                    ("ts", Json::from(9u64)),
                    ("pid", Json::from(0u64)),
                    ("tid", Json::from(1u64)),
                ]),
            ]),
        )]);
        let err = validate_chrome_trace(&doc.to_pretty()).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn digest_hex_is_fixed_width() {
        assert_eq!(digest_hex(0), "0000000000000000");
        assert_eq!(digest_hex(u64::MAX), "ffffffffffffffff");
        assert_eq!(digest_hex(0xdead_beef), "00000000deadbeef");
    }
}
