//! A minimal scoped worker pool for embarrassingly parallel grids.
//!
//! The experiment grids (benchmark × configuration × retry threshold ×
//! seed) are pure functions of their index, so the pool is nothing more
//! than an atomic work-stealing counter over `std::thread::scope`: no
//! channels, no dependencies, deterministic results (every job writes only
//! its own slot, so the output order is independent of scheduling).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: the `CLEAR_WORKERS` environment variable if
/// set to a positive integer, otherwise every available core (at least 2
/// so the grid is genuinely exercised concurrently). The old `.max(4)`
/// floor oversubscribed 1–2 core machines; the pool now never spawns more
/// threads than the host can run unless explicitly asked to.
pub fn default_workers() -> usize {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    workers_from(std::env::var("CLEAR_WORKERS").ok().as_deref(), available)
}

/// Pure core of [`default_workers`], split out for testing: resolves an
/// optional `CLEAR_WORKERS` override against the detected parallelism.
fn workers_from(env: Option<&str>, available: usize) -> usize {
    if let Some(n) = env.and_then(|v| v.trim().parse::<usize>().ok()) {
        if n > 0 {
            return n;
        }
    }
    available.max(2)
}

/// Runs `f(0..n)` across `workers` scoped threads and returns the results
/// in index order.
///
/// Jobs are claimed from a shared atomic counter, so long and short jobs
/// interleave without static partitioning. If a job panics, the panic is
/// propagated to the caller once the remaining workers drain.
///
/// # Panics
///
/// Propagates the first panic raised by any job.
pub fn run_indexed<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("job slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("job slot poisoned")
                .expect("every job index was claimed and completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = run_indexed(100, 7, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_and_more_workers_than_jobs() {
        assert_eq!(run_indexed(3, 1, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed(3, 64, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed::<usize, _>(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn workers_env_override_wins() {
        assert_eq!(workers_from(Some("6"), 2), 6);
        assert_eq!(workers_from(Some(" 12 "), 64), 12);
        // Invalid or non-positive overrides fall back to detection.
        assert_eq!(workers_from(Some("0"), 8), 8);
        assert_eq!(workers_from(Some("lots"), 8), 8);
    }

    #[test]
    fn workers_clamp_to_available_parallelism_with_floor_of_two() {
        assert_eq!(workers_from(None, 1), 2);
        assert_eq!(workers_from(None, 2), 2);
        assert_eq!(workers_from(None, 16), 16);
        assert!(default_workers() >= 2);
    }
}
