//! A minimal scoped worker pool for embarrassingly parallel grids.
//!
//! The experiment grids (benchmark × configuration × retry threshold ×
//! seed) are pure functions of their index, so the pool is nothing more
//! than an atomic work-stealing counter over `std::thread::scope`: no
//! channels, no dependencies, deterministic results (every job writes only
//! its own slot, so the output order is independent of scheduling).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: every available core, but at least 4 so the
/// grid is genuinely exercised concurrently even on small machines.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(4)
}

/// Runs `f(0..n)` across `workers` scoped threads and returns the results
/// in index order.
///
/// Jobs are claimed from a shared atomic counter, so long and short jobs
/// interleave without static partitioning. If a job panics, the panic is
/// propagated to the caller once the remaining workers drain.
///
/// # Panics
///
/// Propagates the first panic raised by any job.
pub fn run_indexed<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("job slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("job slot poisoned")
                .expect("every job index was claimed and completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = run_indexed(100, 7, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_and_more_workers_than_jobs() {
        assert_eq!(run_indexed(3, 1, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed(3, 64, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed::<usize, _>(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn default_workers_is_at_least_four() {
        assert!(default_workers() >= 4);
    }
}
