//! `clear-harness`: the experiment runner for the CLEAR reproduction.
//!
//! The harness owns everything between "a simulator exists" and "the
//! paper's figures are reproduced and regression-checked":
//!
//! - [`experiments`]: a registry of named experiments, one per reproduced
//!   figure/table/study. The legacy `clear-bench` binaries are thin
//!   wrappers over [`experiments::run_to_stdout`].
//! - [`suite`]: the (benchmark × preset × retry × seed) grid engine with
//!   the paper's best-of retry sweep and trimmed-mean aggregation.
//! - [`pool`]: a scoped worker pool that spreads the grid over threads
//!   while keeping results bit-identical to a sequential run.
//! - [`json`]: a small hand-rolled JSON document model (emit + parse), so
//!   the harness needs no external crates.
//! - [`golden`]: versioned golden baselines under `goldens/` with
//!   per-metric drift tolerances; the CLI's `check` exits nonzero on any
//!   drift, which is what CI gates on.
//! - [`trace_export`]: consumers of the machine's execution trace — the
//!   Chrome-trace exporter behind `clear-harness trace`, the plain-text
//!   timeline, and the per-AR derived-metrics pass.
//!
//! ```text
//! cargo run --release -p clear-harness -- list
//! cargo run --release -p clear-harness -- run fig08 --size small
//! cargo run --release -p clear-harness -- check
//! ```

pub mod experiments;
pub mod golden;
pub mod json;
pub mod pool;
pub mod suite;
pub mod trace_export;

pub use suite::{
    bar, format_table, geomean, print_table, run_cell, run_once, run_once_threaded, run_suite,
    split_threads, trimmed_mean, CellResult, SuiteOptions,
};
