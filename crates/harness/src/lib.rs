//! `clear-harness`: the experiment runner for the CLEAR reproduction.
//!
//! The harness owns everything between "a simulator exists" and "the
//! paper's figures are reproduced and regression-checked":
//!
//! - [`experiments`]: a registry of named experiments, one per reproduced
//!   figure/table/study. The legacy `clear-bench` binaries are thin
//!   wrappers over [`experiments::run_to_stdout`].
//! - [`suite`]: the (benchmark × preset × retry × seed) grid engine with
//!   the paper's best-of retry sweep and trimmed-mean aggregation.
//! - [`pool`]: a scoped worker pool that spreads the grid over threads
//!   while keeping results bit-identical to a sequential run.
//! - [`json`]: a small hand-rolled JSON document model (emit + parse), so
//!   the harness needs no external crates.
//! - [`golden`]: versioned golden baselines under `goldens/` with
//!   per-metric drift tolerances; the CLI's `check` exits nonzero on any
//!   drift, which is what CI gates on.
//! - [`trace_export`]: consumers of the machine's execution trace — the
//!   Chrome-trace exporter behind `clear-harness trace`, the plain-text
//!   timeline, and the per-AR derived-metrics pass.
//! - [`metrics_export`]: serializers for [`clear_metrics`] snapshots —
//!   harness JSON (with p50/p99/p999 per histogram) and Prometheus text
//!   exposition, plus a round-trip validator.
//! - [`serve`]: the bounded-memory trace-replay / open-loop service loop
//!   behind `clear-harness serve`, reporting streaming time-to-commit
//!   percentiles per AR class.
//! - [`bench_out`]: the single writer behind every `BENCH_*.json`
//!   artifact (shared name/unit/seed/toolchain/values schema).
//!
//! ```text
//! cargo run --release -p clear-harness -- list
//! cargo run --release -p clear-harness -- run fig08 --size small
//! cargo run --release -p clear-harness -- serve arrayswap --ars 100000
//! cargo run --release -p clear-harness -- check
//! ```

pub mod bench_out;
pub mod experiments;
pub mod golden;
pub mod json;
pub mod metrics_export;
pub mod pool;
pub mod serve;
pub mod suite;
pub mod trace_export;

pub use suite::{
    bar, format_table, geomean, print_table, run_cell, run_once, run_once_threaded, run_suite,
    split_threads, trimmed_mean, CellResult, SuiteOptions,
};
