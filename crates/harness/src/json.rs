//! A hand-rolled JSON value type, serializer and parser.
//!
//! The harness emits machine-readable results and reads golden baselines
//! back without any external dependency. The subset implemented is exactly
//! what the goldens need: objects (with stable insertion order), arrays,
//! integers, finite floats, strings, booleans and null. Non-finite floats
//! serialize as `null` (JSON has no NaN), which the comparator treats as
//! equal to `null`.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so serialization is
/// deterministic and diffs are stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (counts, cycles, thresholds — all fit in `i64`).
    Int(i64),
    /// A finite double; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(i64::try_from(v).expect("count exceeds i64::MAX"))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i64::from(v))
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<I, K>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the canonical on-disk golden format.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_float(out, *f),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // `{:?}` prints the shortest string that round-trips, and always
    // includes a decimal point or exponent, keeping floats distinguishable
    // from integers on re-parse.
    let _ = write!(out, "{f:?}");
}

/// Which textual format a string is being escaped for.
///
/// Every text exporter in the harness (JSON documents, Chrome traces, the
/// Prometheus exposition) funnels through [`escape_into`] with one of
/// these styles, so the escaping rules live in exactly one place.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EscapeStyle {
    /// JSON string contents (between the surrounding quotes): `"`, `\`,
    /// the short control escapes, and `\u` escapes for the rest of the
    /// C0 range.
    Json,
    /// Prometheus text-exposition label values (between the surrounding
    /// quotes): only `\`, `"` and newline are escaped, per the format
    /// spec; every other character passes through verbatim.
    PrometheusLabel,
}

/// Appends `s` to `out` escaped for the given style. Quotes around the
/// value are the caller's job — both formats wrap values in `"`, but the
/// escaping of the *contents* is what differs.
pub fn escape_into(out: &mut String, s: &str, style: EscapeStyle) {
    for c in s.chars() {
        match (style, c) {
            (_, '"') => out.push_str("\\\""),
            (_, '\\') => out.push_str("\\\\"),
            (_, '\n') => out.push_str("\\n"),
            (EscapeStyle::Json, '\t') => out.push_str("\\t"),
            (EscapeStyle::Json, '\r') => out.push_str("\\r"),
            (EscapeStyle::Json, c) if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            (_, c) => out.push(c),
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s, EscapeStyle::Json);
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected number at byte {start}"));
    }
    if float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|e| format!("bad float `{text}`: {e}"))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|e| format!("bad integer `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_structures() {
        let doc = Json::obj([
            ("name", Json::from("fig08")),
            ("count", Json::from(42u64)),
            ("ratio", Json::from(0.125)),
            ("nan", Json::Float(f64::NAN)),
            ("flags", Json::arr([Json::Bool(true), Json::Null])),
            ("nested", Json::obj([("k", Json::from("v\"esc\\ape\n"))])),
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj(Vec::<(&str, Json)>::new())),
        ]);
        let text = doc.to_pretty();
        let back = Json::parse(&text).expect("parse");
        // NaN serialized as null, so compare against the null-ed doc.
        let mut expected = doc.clone();
        if let Json::Obj(pairs) = &mut expected {
            pairs[3].1 = Json::Null;
        }
        assert_eq!(back, expected);
    }

    #[test]
    fn parses_whitespace_and_negatives() {
        let doc = Json::parse(" { \"a\" : [ -1 , -2.5e1 ] } ").expect("parse");
        assert_eq!(
            doc,
            Json::obj([("a", Json::arr([Json::Int(-1), Json::Float(-25.0)]))])
        );
    }

    #[test]
    fn integer_and_float_stay_distinct() {
        let text = Json::obj([("i", Json::Int(3)), ("f", Json::Float(3.0))]).to_pretty();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back.get("i"), Some(&Json::Int(3)));
        assert_eq!(back.get("f"), Some(&Json::Float(3.0)));
    }

    #[test]
    fn rejects_malformed() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn escape_styles_diverge_only_on_control_characters() {
        let nasty = "a\"b\\c\nd\te\rf\u{1}g";
        let mut json = String::new();
        escape_into(&mut json, nasty, EscapeStyle::Json);
        assert_eq!(json, "a\\\"b\\\\c\\nd\\te\\rf\\u0001g");
        let mut prom = String::new();
        escape_into(&mut prom, nasty, EscapeStyle::PrometheusLabel);
        assert_eq!(prom, "a\\\"b\\\\c\\nd\te\rf\u{1}g");
        // The JSON escaping round-trips through the in-tree parser.
        let back = Json::parse(&format!("\"{json}\"")).expect("parse");
        assert_eq!(back, Json::Str(nasty.to_string()));
    }

    #[test]
    fn float_formatting_roundtrips_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-9, 123_456_789.123_456_79, 2e300] {
            let text = Json::Float(f).to_pretty();
            match Json::parse(&text).expect("parse") {
                Json::Float(back) => assert_eq!(back, f),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }
}
