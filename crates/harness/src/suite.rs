//! Suite machinery: option parsing, single runs, the per-application
//! best-of retry sweep, seed aggregation with trimmed means, and table
//! formatting.
//!
//! This is the engine under every experiment in the registry. The full
//! (benchmark × preset × retry × seed) grid of [`run_suite`] is executed
//! in parallel on a scoped worker pool; because each run is a pure
//! function of its coordinates, the parallel suite is bit-identical to
//! the sequential one.

use crate::pool;
use clear_analysis::{workload_plans, StaticBudget};
use clear_core::StaticPlanSet;
use clear_machine::{BackendId, Machine, MachineConfig, Preset, RunStats};
use clear_workloads::{by_name, Size, BENCHMARK_NAMES};
use std::sync::Arc;

/// Parsed harness options.
#[derive(Clone, Debug)]
pub struct SuiteOptions {
    /// Input scale.
    pub size: Size,
    /// Simulated core count.
    pub cores: usize,
    /// Seeds to aggregate over.
    pub seeds: Vec<u64>,
    /// Retry thresholds to sweep (best one is picked per app × preset).
    pub retry_sweep: Vec<u32>,
    /// Benchmarks to run.
    pub benchmarks: Vec<&'static str>,
    /// Worker threads for the parallel grid (≥ 1; default: all cores, at
    /// least 4).
    pub workers: usize,
    /// Intra-run stepping threads per simulated machine (1 = strictly
    /// sequential, 0 = all host cores, n ≥ 2 = capped). Results are
    /// byte-identical for every value; only the `par_batch_*` perf
    /// counters reveal whether batching was on.
    pub sim_threads: usize,
    /// Speculation backends for backend-sweep experiments (stable
    /// [`BackendId`] names). Defaults to all five; `--backend NAME`
    /// restricts the sweep, repeatable. Preset-grid experiments ignore
    /// this field.
    pub backends: Vec<&'static str>,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            size: Size::Small,
            cores: 32,
            seeds: vec![1, 2, 3],
            retry_sweep: vec![2, 5, 8],
            benchmarks: BENCHMARK_NAMES.to_vec(),
            workers: pool::default_workers(),
            sim_threads: default_sim_threads(),
            backends: BackendId::ALL.iter().map(|b| b.name()).collect(),
        }
    }
}

/// The default intra-run thread count: the `CLEAR_SIM_THREADS` environment
/// variable if set to an integer (`0` meaning all host cores), otherwise 1
/// (sequential stepping). Precedence, lowest to highest: built-in defaults,
/// then the environment (`CLEAR_WORKERS` seeds the grid share,
/// `CLEAR_SIM_THREADS` the intra-run share), then CLI flags in order —
/// `--threads N` reassigns both shares from one budget, a later `--workers`
/// or another `--threads` rewrites its share again.
fn default_sim_threads() -> usize {
    std::env::var("CLEAR_SIM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(1)
}

/// Splits a total thread budget between the experiment grid and intra-run
/// stepping. Grid parallelism is embarrassingly parallel and scales
/// near-linearly, so it is funded first: the intra-run share is at most the
/// integer square root of the budget and the grid takes the quotient, so
/// `workers * sim_threads` never exceeds the budget. Returns
/// `(workers, sim_threads)`.
pub fn split_threads(total: usize) -> (usize, usize) {
    let total = total.max(1);
    let mut sim = 1usize;
    while (sim + 1) * (sim + 1) <= total {
        sim += 1;
    }
    ((total / sim).max(1), sim)
}

impl SuiteOptions {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed options.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_arg_slice(&args)
    }

    /// Parses an explicit argument list (the CLI passes the tail of its
    /// own argument vector here).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed options.
    pub fn from_arg_slice(args: &[String]) -> Self {
        let mut o = SuiteOptions::default();
        let mut picked: Vec<&'static str> = Vec::new();
        let mut picked_backends: Vec<&'static str> = Vec::new();
        let mut args = args.iter();
        while let Some(a) = args.next() {
            let mut val = || {
                args.next()
                    .cloned()
                    .unwrap_or_else(|| panic!("missing value for {a}"))
            };
            match a.as_str() {
                "--size" => {
                    o.size = match val().as_str() {
                        "tiny" => Size::Tiny,
                        "small" => Size::Small,
                        "medium" => Size::Medium,
                        other => panic!("unknown size {other}"),
                    }
                }
                "--cores" => o.cores = val().parse().expect("--cores N"),
                "--seeds" => {
                    let n: u64 = val().parse().expect("--seeds N");
                    o.seeds = (1..=n).collect();
                }
                "--sweep" => {
                    o.retry_sweep = match val().as_str() {
                        "full" => (1..=10).collect(),
                        "quick" => vec![2, 5, 8],
                        "none" => vec![5],
                        other => panic!("unknown sweep {other}"),
                    }
                }
                "--bench" => {
                    let name = val();
                    let known = BENCHMARK_NAMES
                        .iter()
                        .find(|n| **n == name)
                        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
                    picked.push(known);
                }
                "--backend" => {
                    let name = val();
                    let known = BackendId::from_name(&name)
                        .unwrap_or_else(|| panic!("unknown backend {name}"));
                    picked_backends.push(known.name());
                }
                "--workers" => o.workers = val().parse::<usize>().expect("--workers N").max(1),
                "--threads" => {
                    let total: usize = val().parse().expect("--threads N");
                    let (workers, sim) = split_threads(total);
                    o.workers = workers;
                    o.sim_threads = sim;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --size tiny|small|medium --cores N --seeds N \
                         --sweep full|quick|none --bench NAME --backend NAME \
                         --workers N --threads N"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown option {other}"),
            }
        }
        if !picked.is_empty() {
            o.benchmarks = picked;
        }
        if !picked_backends.is_empty() {
            o.backends = picked_backends;
        }
        o
    }
}

/// Runs one benchmark once under a fully specified configuration.
///
/// # Panics
///
/// Panics if the benchmark name is unknown, the run times out, or the
/// workload's atomicity invariant fails — a harness must never report
/// numbers from a broken run.
pub fn run_once(
    name: &str,
    preset: Preset,
    cores: usize,
    max_retries: u32,
    size: Size,
    seed: u64,
) -> RunStats {
    run_once_threaded(name, preset, cores, max_retries, size, seed, 1)
}

/// [`run_once`] with an explicit intra-run thread count. Stats are
/// byte-identical for every `sim_threads` value except the `par_batch_*`
/// perf counters, which record whether batching was active.
///
/// # Panics
///
/// As [`run_once`].
#[allow(clippy::too_many_arguments)]
pub fn run_once_threaded(
    name: &str,
    preset: Preset,
    cores: usize,
    max_retries: u32,
    size: Size,
    seed: u64,
    sim_threads: usize,
) -> RunStats {
    let workload = by_name(name, size, seed).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let mut cfg: MachineConfig = preset.config(cores, max_retries);
    cfg.seed = seed;
    cfg.sim_threads = sim_threads;
    let mut machine = Machine::new(cfg, workload);
    let stats = machine.run();
    assert!(!stats.timed_out, "{name}/{preset}: run timed out");
    machine
        .workload()
        .validate(machine.memory())
        .unwrap_or_else(|e| panic!("{name}/{preset}: invariant violated: {e}"));
    stats
}

/// Runs one benchmark once under an explicit speculation backend's
/// Table 2 configuration (see [`BackendId::config`]).
///
/// # Panics
///
/// As [`run_once`].
#[allow(clippy::too_many_arguments)]
pub fn run_once_backend(
    name: &str,
    backend: BackendId,
    cores: usize,
    max_retries: u32,
    size: Size,
    seed: u64,
    sim_threads: usize,
) -> RunStats {
    let workload = by_name(name, size, seed).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let mut cfg: MachineConfig = backend.config(cores, max_retries);
    cfg.seed = seed;
    cfg.sim_threads = sim_threads;
    let mut machine = Machine::new(cfg, workload);
    let stats = machine.run();
    assert!(!stats.timed_out, "{name}/{backend}: run timed out");
    machine
        .workload()
        .validate(machine.memory())
        .unwrap_or_else(|e| panic!("{name}/{backend}: invariant violated: {e}"));
    stats
}

/// Derives the static plans for one benchmark by sampling and analyzing a
/// fresh workload instance (deterministic for a given name/size/seed).
/// Plans are symbolic in the entry registers, so one sampling seed covers
/// every run seed.
///
/// # Panics
///
/// Panics if the benchmark name is unknown or sampling fails.
pub fn benchmark_plans(name: &str, size: Size, seed: u64, threads: usize) -> Arc<StaticPlanSet> {
    let mut w = by_name(name, size, seed).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let plans = workload_plans(&mut *w, threads, &StaticBudget::default())
        .unwrap_or_else(|e| panic!("{name}: static planning failed: {e}"));
    Arc::new(plans)
}

/// [`run_once_backend`] with analyzer-emitted static plans installed, so
/// CLEAR-capable backends take the discovery-skipping fast path. Passing
/// `None` is exactly [`run_once_backend`].
///
/// # Panics
///
/// As [`run_once`].
#[allow(clippy::too_many_arguments)]
pub fn run_once_backend_planned(
    name: &str,
    backend: BackendId,
    cores: usize,
    max_retries: u32,
    size: Size,
    seed: u64,
    sim_threads: usize,
    plans: Option<Arc<StaticPlanSet>>,
) -> RunStats {
    let workload = by_name(name, size, seed).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let mut cfg: MachineConfig = backend.config(cores, max_retries);
    cfg.seed = seed;
    cfg.sim_threads = sim_threads;
    cfg.static_plans = plans;
    let mut machine = Machine::new(cfg, workload);
    let stats = machine.run();
    assert!(!stats.timed_out, "{name}/{backend}: run timed out");
    machine
        .workload()
        .validate(machine.memory())
        .unwrap_or_else(|e| panic!("{name}/{backend}: invariant violated: {e}"));
    stats
}

/// Aggregated result of one benchmark × preset cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Benchmark name.
    pub name: String,
    /// Configuration letter.
    pub preset: Preset,
    /// The retry threshold that minimised mean execution time (the paper's
    /// per-application design-space exploration).
    pub best_retries: u32,
    /// One `RunStats` per seed at the best threshold.
    pub runs: Vec<RunStats>,
}

impl CellResult {
    /// Trimmed-mean cycles across seeds.
    pub fn cycles(&self) -> f64 {
        trimmed_mean(
            &self
                .runs
                .iter()
                .map(|r| r.total_cycles as f64)
                .collect::<Vec<_>>(),
        )
    }

    /// Trimmed-mean total energy across seeds.
    pub fn energy(&self) -> f64 {
        trimmed_mean(
            &self
                .runs
                .iter()
                .map(|r| r.energy.total())
                .collect::<Vec<_>>(),
        )
    }

    /// Mean of an arbitrary per-run metric.
    pub fn mean<F: Fn(&RunStats) -> f64>(&self, f: F) -> f64 {
        trimmed_mean(&self.runs.iter().map(f).collect::<Vec<_>>())
    }
}

/// Picks the best cell from per-threshold run vectors, preserving the
/// sweep order: a later threshold wins only if strictly faster.
fn pick_best(
    name: &str,
    preset: Preset,
    sweep: &[u32],
    per_threshold: Vec<Vec<RunStats>>,
) -> CellResult {
    let mut best: Option<CellResult> = None;
    for (&retries, runs) in sweep.iter().zip(per_threshold) {
        let cell = CellResult {
            name: name.to_string(),
            preset,
            best_retries: retries,
            runs,
        };
        let better = best
            .as_ref()
            .map(|b| cell.cycles() < b.cycles())
            .unwrap_or(true);
        if better {
            best = Some(cell);
        }
    }
    best.expect("non-empty sweep")
}

/// Runs the retry sweep for one benchmark × preset and returns the best
/// cell (paper §6: "we run from 1 to 10 retries for all benchmarks and
/// select the best-performing one").
pub fn run_cell(name: &str, preset: Preset, opts: &SuiteOptions) -> CellResult {
    let per_threshold: Vec<Vec<RunStats>> = opts
        .retry_sweep
        .iter()
        .map(|&retries| {
            opts.seeds
                .iter()
                .map(|&s| {
                    run_once_threaded(
                        name,
                        preset,
                        opts.cores,
                        retries,
                        opts.size,
                        s,
                        opts.sim_threads,
                    )
                })
                .collect()
        })
        .collect();
    pick_best(name, preset, &opts.retry_sweep, per_threshold)
}

/// Runs every benchmark in `opts` under all four presets, spreading the
/// whole (benchmark × preset × retry × seed) grid across the worker pool.
///
/// Results are identical to running [`run_cell`] sequentially for every
/// benchmark and preset: each grid point is a pure function of its
/// coordinates and the best-threshold fold preserves the sweep order.
pub fn run_suite(opts: &SuiteOptions) -> Vec<[CellResult; 4]> {
    let presets = Preset::ALL;
    let (nb, np, nr, ns) = (
        opts.benchmarks.len(),
        presets.len(),
        opts.retry_sweep.len(),
        opts.seeds.len(),
    );
    let total = nb * np * nr * ns;
    let stats = pool::run_indexed(total, opts.workers, |i| {
        let s = i % ns;
        let r = (i / ns) % nr;
        let p = (i / (ns * nr)) % np;
        let b = i / (ns * nr * np);
        run_once_threaded(
            opts.benchmarks[b],
            presets[p],
            opts.cores,
            opts.retry_sweep[r],
            opts.size,
            opts.seeds[s],
            opts.sim_threads,
        )
    });
    let mut iter = stats.into_iter();
    opts.benchmarks
        .iter()
        .map(|name| {
            let mut cells = Vec::with_capacity(np);
            for &preset in &presets {
                let per_threshold: Vec<Vec<RunStats>> = (0..nr)
                    .map(|_| (0..ns).map(|_| iter.next().expect("grid size")).collect())
                    .collect();
                cells.push(pick_best(name, preset, &opts.retry_sweep, per_threshold));
            }
            cells
                .try_into()
                .map_err(|_| "four presets")
                .expect("four presets")
        })
        .collect()
}

/// Mean after dropping the ⌈30%⌉ most extreme values (the paper's
/// 10-runs-drop-3-outliers methodology, scaled to the sample size).
pub fn trimmed_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "trimmed_mean of empty slice");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let drop = (v.len() * 3) / 10;
    // Drop the most extreme values relative to the median, alternating ends.
    let kept = &v[drop / 2..v.len() - drop.div_ceil(2)];
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Renders a value as a horizontal bar scaled against `max` (the paper's
/// figures are bar charts; the terminal gets the next best thing).
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || !value.is_finite() {
        return String::new();
    }
    let n = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(n)
}

/// Formats a figure-style table: one row per benchmark, one column per
/// preset, plus a final aggregate row, followed by a bar chart of the four
/// aggregate values.
pub fn format_table(
    title: &str,
    header: &str,
    rows: &[(String, [f64; 4])],
    aggregate: (&str, [f64; 4]),
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n=== {title} ===");
    let _ = writeln!(
        out,
        "{:14} {:>9} {:>9} {:>9} {:>9}   ({header})",
        "benchmark", "B", "P", "C", "W"
    );
    for (name, vals) in rows {
        let _ = writeln!(
            out,
            "{:14} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            name, vals[0], vals[1], vals[2], vals[3]
        );
    }
    let (label, vals) = aggregate;
    let _ = writeln!(
        out,
        "{:14} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
        label, vals[0], vals[1], vals[2], vals[3]
    );
    let max = vals.iter().cloned().fold(0.0_f64, f64::max);
    for (letter, v) in ['B', 'P', 'C', 'W'].iter().zip(vals) {
        let _ = writeln!(out, "  {letter} {:<40} {v:.3}", bar(v, max, 36));
    }
    out
}

/// Prints [`format_table`] to stdout (legacy entry point).
pub fn print_table(
    title: &str,
    header: &str,
    rows: &[(String, [f64; 4])],
    aggregate: (&str, [f64; 4]),
) {
    print!("{}", format_table(title, header, rows, aggregate));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_mean_plain_average_when_small() {
        assert!((trimmed_mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-9);
        assert!((trimmed_mean(&[5.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn trimmed_mean_drops_outliers_at_ten() {
        let mut xs = vec![1.0; 7];
        xs.extend([100.0, 200.0, -50.0]);
        let m = trimmed_mean(&xs);
        assert!(
            (m - 1.0).abs() < 15.0,
            "outliers should be mostly trimmed, got {m}"
        );
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(1.0, 1.0, 10), "##########");
        assert_eq!(bar(0.5, 1.0, 10), "#####");
        assert_eq!(bar(0.0, 1.0, 10), "");
        assert_eq!(bar(2.0, 1.0, 10), "##########", "clamped at full width");
        assert_eq!(bar(1.0, 0.0, 10), "", "zero max renders nothing");
    }

    #[test]
    fn split_threads_funds_the_grid_first() {
        assert_eq!(split_threads(0), (1, 1));
        assert_eq!(split_threads(1), (1, 1));
        assert_eq!(split_threads(2), (2, 1));
        assert_eq!(split_threads(4), (2, 2));
        assert_eq!(split_threads(8), (4, 2));
        assert_eq!(split_threads(16), (4, 4));
        for total in 1..=64 {
            let (w, s) = split_threads(total);
            assert!(w * s <= total.max(1), "budget exceeded at {total}");
            assert!(w >= s, "grid is funded first at {total}");
        }
    }

    #[test]
    fn threads_flag_splits_and_later_workers_overrides() {
        let args: Vec<String> = ["--threads", "8"].iter().map(|s| s.to_string()).collect();
        let o = SuiteOptions::from_arg_slice(&args);
        assert_eq!((o.workers, o.sim_threads), (4, 2));
        let args: Vec<String> = ["--threads", "8", "--workers", "1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = SuiteOptions::from_arg_slice(&args);
        assert_eq!((o.workers, o.sim_threads), (1, 2));
    }

    #[test]
    fn run_once_produces_valid_stats() {
        let s = run_once("arrayswap", Preset::B, 4, 5, Size::Tiny, 1);
        assert!(s.commits() > 0);
    }

    #[test]
    fn backend_flag_restricts_the_sweep() {
        let o = SuiteOptions::default();
        assert_eq!(o.backends, vec!["tsx", "powertm", "sle", "clear", "lrws"]);
        let args: Vec<String> = ["--backend", "lrws", "--backend", "clear"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = SuiteOptions::from_arg_slice(&args);
        assert_eq!(o.backends, vec!["lrws", "clear"]);
    }

    #[test]
    fn run_once_backend_covers_every_backend() {
        for id in BackendId::ALL {
            let s = run_once_backend("arrayswap", id, 4, 5, Size::Tiny, 1, 1);
            assert!(s.commits() > 0, "{id} produced no commits");
            if id != BackendId::Lrws {
                assert_eq!(s.lrws_capacity_aborts(), 0, "{id}");
            }
        }
    }

    #[test]
    fn run_cell_picks_some_threshold() {
        let opts = SuiteOptions {
            size: Size::Tiny,
            cores: 4,
            seeds: vec![1],
            retry_sweep: vec![2, 8],
            ..SuiteOptions::default()
        };
        let cell = run_cell("mwobject", Preset::B, &opts);
        assert!(cell.best_retries == 2 || cell.best_retries == 8);
        assert_eq!(cell.runs.len(), 1);
    }

    /// The tentpole's correctness keystone: the parallel grid must equal
    /// the sequential per-cell sweep bit-for-bit.
    #[test]
    fn parallel_suite_matches_sequential_cells() {
        let opts = SuiteOptions {
            size: Size::Tiny,
            cores: 4,
            seeds: vec![1, 2],
            retry_sweep: vec![2, 5],
            benchmarks: vec!["arrayswap", "mwobject"],
            workers: 4,
            sim_threads: 1,
            backends: vec!["clear"],
        };
        let suite = run_suite(&opts);
        for (name, cells) in opts.benchmarks.iter().zip(&suite) {
            for (preset, cell) in Preset::ALL.iter().zip(cells.iter()) {
                let seq = run_cell(name, *preset, &opts);
                assert_eq!(cell.best_retries, seq.best_retries, "{name}/{preset}");
                assert_eq!(cell.runs.len(), seq.runs.len());
                for (a, b) in cell.runs.iter().zip(&seq.runs) {
                    assert_eq!(a.total_cycles, b.total_cycles, "{name}/{preset}");
                    assert_eq!(a.aborts.total(), b.aborts.total(), "{name}/{preset}");
                }
            }
        }
    }
}
