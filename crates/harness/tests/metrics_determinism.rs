//! Cross-cutting determinism guarantees of the metrics layer: snapshots
//! must be byte-identical regardless of how the work was partitioned —
//! across grid-pool worker counts, across `sim_threads` modes, and
//! across serve-loop batch boundaries. These are the properties that let
//! the `slo-latency` golden pin p50/p99/p999 exactly.

use clear_harness::metrics_export::{prometheus_text, snapshot_to_json, validate_prometheus};
use clear_harness::pool;
use clear_harness::serve::{serve_session, ServeOptions};
use clear_machine::{Machine, MachineConfig, Preset};
use clear_metrics::MetricsRegistry;
use clear_workloads::{by_name, Size};

/// One metrics-enabled run of a tiny benchmark cell.
fn run_cell(bench: &str, seed: u64, sim_threads: usize) -> MetricsRegistry {
    let workload = by_name(bench, Size::Tiny, seed).expect(bench);
    let mut cfg: MachineConfig = Preset::C.config(8, 5);
    cfg.seed = seed;
    cfg.sim_threads = sim_threads;
    let mut machine = Machine::new(cfg, workload);
    machine.enable_metrics();
    let stats = machine.run();
    assert!(!stats.timed_out);
    machine.take_metrics().expect("metrics enabled")
}

/// The canonical serialized form used for byte-identity comparisons.
fn canon(reg: &MetricsRegistry) -> String {
    snapshot_to_json(&reg.snapshot()).to_pretty()
}

#[test]
fn merge_is_identical_for_one_vs_many_workers() {
    let cells: Vec<(&str, u64)> = (1u64..=8)
        .map(|s| (if s % 2 == 0 { "arrayswap" } else { "mwobject" }, s))
        .collect();
    // Same cells, executed on 1 pool worker vs 4; merged in index order.
    let merged_on = |workers: usize| {
        let regs = pool::run_indexed(cells.len(), workers, |i| {
            let (bench, seed) = cells[i];
            run_cell(bench, seed, 1)
        });
        let mut all = MetricsRegistry::new();
        for r in &regs {
            all.merge(r);
        }
        all
    };
    assert_eq!(canon(&merged_on(1)), canon(&merged_on(4)));
}

#[test]
fn merge_order_does_not_change_the_snapshot() {
    let a = run_cell("arrayswap", 3, 1);
    let b = run_cell("mwobject", 4, 1);
    let mut ab = MetricsRegistry::new();
    ab.merge(&a);
    ab.merge(&b);
    let mut ba = MetricsRegistry::new();
    ba.merge(&b);
    ba.merge(&a);
    assert_eq!(canon(&ab), canon(&ba));
}

#[test]
fn sim_threads_cannot_leak_into_metrics() {
    // The simulated schedule is byte-identical for any sim_threads, and
    // every metrics hook sits on a sequential path; 2-vs-8 must agree on
    // everything, including the par_batch_* gauges.
    assert_eq!(
        canon(&run_cell("arrayswap", 1, 2)),
        canon(&run_cell("arrayswap", 1, 8))
    );
}

#[test]
fn serve_session_is_identical_across_sim_threads() {
    let opts = |threads: usize| ServeOptions {
        total_ars: 128,
        batch: 64,
        queue: 96,
        sim_threads: threads,
        ..ServeOptions::default()
    };
    let a = serve_session(&opts(2));
    let b = serve_session(&opts(8));
    assert_eq!(a.json.to_pretty(), b.json.to_pretty());
    // The Prometheus exposition of the merged registry agrees too, and
    // self-validates.
    let pa = prometheus_text(&a.registry.snapshot());
    let pb = prometheus_text(&b.registry.snapshot());
    assert_eq!(pa, pb);
    validate_prometheus(&pa).expect("valid exposition");
}

#[test]
fn serve_backpressure_bounds_the_queue_without_drops() {
    // Queue far smaller than the session: admission must stall (not grow)
    // and still deliver every AR.
    let opts = ServeOptions {
        total_ars: 256,
        batch: 16,
        queue: 24,
        ..ServeOptions::default()
    };
    let r = serve_session(&opts);
    assert_eq!(r.ars, 256, "every admitted AR is served");
    assert!(
        r.queue_max_depth <= 24,
        "queue exceeded its bound: {}",
        r.queue_max_depth
    );
    assert!(r.backpressure_events > 0, "a 24-slot queue must stall");
    let q = r.json.get("queue").expect("queue block");
    assert_eq!(
        q.get("dropped"),
        Some(&clear_harness::json::Json::Int(0)),
        "steady state drops nothing"
    );
}
