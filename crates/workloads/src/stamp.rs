//! STAMP application models.
//!
//! The STAMP suite \[30\] is tens of thousands of lines of C; porting it
//! verbatim is out of scope (and the paper's evaluation does not depend on
//! its computation, only on its *atomic regions*). Each application is
//! modelled as a set of AR generators whose per-AR footprint size,
//! indirection structure, write ratio, contention and AR count match the
//! paper's Table 1 characterisation and the qualitative behaviour reported
//! in §7 (e.g. labyrinth's footprints overflow the ALT; kmeans' centre
//! updates are small and hot; intruder is large-but-S-CL-able).
//!
//! Three AR shapes cover the Table 1 classes:
//!
//! * [`ArKind::Block`] — *immutable*: unrolled accesses to a contiguous
//!   block whose base is computed outside the AR;
//! * [`ArKind::Indirect`] — *likely-immutable*: the same, but the region
//!   base is loaded from a pointer slot inside the AR (the pointer never
//!   changes);
//! * [`ArKind::Chase`] — *mutable*: a pointer chase through a shared
//!   permutation table, a read-modify-write of a cell selected by the final
//!   index, then an atomic swap of two table entries (which mutates other
//!   chasers' footprints — and makes "the table is still a permutation" a
//!   strong atomicity invariant).

use crate::common::{Size, ThreadRngs};
use clear_isa::{
    AluOp, ArId, ArInvocation, ArSpec, Mutability, Program, ProgramBuilder, Reg, Workload,
    WorkloadMeta,
};
use clear_mem::{Addr, Memory, LINE_BYTES, WORD_BYTES};
use std::sync::Arc;

/// Shape of one modelled atomic region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArKind {
    /// Read `lines` contiguous cachelines; increment the first `writes`.
    /// The block base is an entry argument — no indirection.
    Block {
        /// Cachelines accessed.
        lines: u32,
        /// Of those, lines read-modify-written (+1 each).
        writes: u32,
    },
    /// Like `Block`, but the region base is loaded from a (never-written)
    /// pointer slot inside the AR.
    Indirect {
        /// Cachelines accessed (excluding the pointer slot line).
        lines: u32,
        /// Lines read-modify-written.
        writes: u32,
    },
    /// Chase `steps` hops through the permutation table, increment the
    /// cell indexed by the final hop, then swap two table entries.
    Chase {
        /// Pointer-chase hops (≈ footprint in lines).
        steps: u32,
    },
    /// Read-only chase: `steps` hops, accumulating the visited indices into
    /// a thread-private cell — a lookup whose footprint mutates with the
    /// table but which writes nothing shared.
    ChaseRead {
        /// Pointer-chase hops.
        steps: u32,
    },
}

/// Static description of one modelled AR.
#[derive(Clone, Copy, Debug)]
pub struct ArModel {
    /// Display name.
    pub name: &'static str,
    /// Table 1 class.
    pub mutability: Mutability,
    /// Relative selection weight.
    pub weight: u32,
    /// Shape.
    pub kind: ArKind,
}

/// Per-application parameters.
#[derive(Clone, Debug)]
pub struct StampParams {
    /// Benchmark name as in the figures.
    pub name: &'static str,
    /// The modelled ARs (count and classes match Table 1).
    pub ars: Vec<ArModel>,
    /// Shared data-region size in lines (contention knob: smaller = hotter).
    pub data_lines: u32,
    /// Permutation table size in entries (one line each).
    pub perm_entries: u32,
    /// Inter-AR think time range (models the sequential phase).
    pub think: (u64, u64),
}

fn block_ar(name: &'static str, lines: u32, writes: u32, weight: u32) -> ArModel {
    ArModel {
        name,
        mutability: Mutability::Immutable,
        weight,
        kind: ArKind::Block { lines, writes },
    }
}

fn indirect_ar(name: &'static str, lines: u32, writes: u32, weight: u32) -> ArModel {
    ArModel {
        name,
        mutability: Mutability::LikelyImmutable,
        weight,
        kind: ArKind::Indirect { lines, writes },
    }
}

fn chase_ar(name: &'static str, steps: u32, weight: u32) -> ArModel {
    ArModel {
        name,
        mutability: Mutability::Mutable,
        weight,
        kind: ArKind::Chase { steps },
    }
}

fn chase_read_ar(name: &'static str, steps: u32, weight: u32) -> ArModel {
    ArModel {
        name,
        mutability: Mutability::Mutable,
        weight,
        kind: ArKind::ChaseRead { steps },
    }
}

impl StampParams {
    /// The per-application parameter table.
    pub fn by_name(name: &str) -> Option<StampParams> {
        let p = match name {
            // 14 ARs: 5 likely-immutable, 9 mutable. Large learner ARs;
            // moderate contention.
            "bayes" => StampParams {
                name: "bayes",
                ars: vec![
                    indirect_ar("adtree-q1", 4, 1, 4),
                    indirect_ar("adtree-q2", 6, 2, 4),
                    indirect_ar("score-rd", 3, 0, 6),
                    indirect_ar("score-wr", 4, 2, 3),
                    indirect_ar("task-pop", 2, 1, 6),
                    chase_read_ar("learn-s1", 6, 3),
                    chase_ar("learn-s2", 8, 3),
                    chase_ar("learn-s3", 10, 3),
                    chase_ar("learn-s4", 14, 2),
                    chase_ar("learn-s5", 18, 2),
                    chase_ar("learn-s6", 24, 2),
                    chase_ar("learn-s7", 30, 1),
                    chase_ar("learn-s8", 38, 1),
                    chase_ar("learn-s9", 44, 1),
                ],
                data_lines: 96,
                perm_entries: 96,
                think: (60, 200),
            },
            // 5 mutable ARs: segment/hashtable inserts, medium footprints.
            "genome" => StampParams {
                name: "genome",
                ars: vec![
                    chase_ar("seg-insert", 5, 6),
                    chase_ar("table-ins", 7, 6),
                    chase_read_ar("dedup", 4, 4),
                    chase_read_ar("overlap", 9, 3),
                    chase_ar("build", 12, 2),
                ],
                data_lines: 128,
                perm_entries: 128,
                think: (40, 120),
            },
            // 3 ARs (2 likely, 1 mutable): shared queues, high contention,
            // large-but-lockable footprints (the peak discovery-overhead app).
            "intruder" => StampParams {
                name: "intruder",
                ars: vec![
                    indirect_ar("pkt-deq", 6, 3, 6),
                    indirect_ar("frag-map", 10, 5, 4),
                    chase_ar("detect", 16, 3),
                ],
                data_lines: 24,
                perm_entries: 48,
                think: (15, 45),
            },
            // 3 ARs (1 immutable, 2 likely): tiny centre updates, high
            // contention.
            "kmeans-h" => StampParams {
                name: "kmeans-h",
                ars: vec![
                    block_ar("center-upd", 2, 2, 6),
                    indirect_ar("len-upd", 2, 1, 4),
                    indirect_ar("delta", 1, 1, 3),
                ],
                data_lines: 8,
                perm_entries: 16,
                think: (80, 200),
            },
            // Same shapes, larger centre array: low contention.
            "kmeans-l" => StampParams {
                name: "kmeans-l",
                ars: vec![
                    block_ar("center-upd", 2, 2, 6),
                    indirect_ar("len-upd", 2, 1, 4),
                    indirect_ar("delta", 1, 1, 3),
                ],
                data_lines: 64,
                perm_entries: 64,
                think: (80, 200),
            },
            // 3 mutable ARs with huge footprints: path copies overflow the
            // ALT, so CLEAR cannot convert them (fallback-heavy, §7).
            "labyrinth" => StampParams {
                name: "labyrinth",
                ars: vec![
                    chase_ar("path-s", 36, 2),
                    chase_ar("path-m", 48, 2),
                    chase_ar("path-l", 60, 1),
                ],
                data_lines: 256,
                perm_entries: 128,
                think: (400, 900),
            },
            // 3 ARs (2 immutable, 1 likely): tiny graph updates, large
            // graph, low contention.
            "ssca2" => StampParams {
                name: "ssca2",
                ars: vec![
                    block_ar("edge-add", 1, 1, 6),
                    block_ar("weight", 2, 1, 4),
                    indirect_ar("adj-upd", 2, 1, 3),
                ],
                data_lines: 192,
                perm_entries: 64,
                think: (20, 60),
            },
            // 3 ARs (1 likely, 2 mutable): reservation trees.
            "vacation-h" => StampParams {
                name: "vacation-h",
                ars: vec![
                    indirect_ar("customer", 4, 2, 4),
                    chase_read_ar("reserve", 8, 5),
                    chase_ar("update-tbl", 12, 3),
                ],
                data_lines: 48,
                perm_entries: 64,
                think: (50, 140),
            },
            "vacation-l" => StampParams {
                name: "vacation-l",
                ars: vec![
                    indirect_ar("customer", 4, 2, 4),
                    chase_read_ar("reserve", 8, 5),
                    chase_ar("update-tbl", 12, 3),
                ],
                data_lines: 160,
                perm_entries: 160,
                think: (50, 140),
            },
            // 6 ARs (1 immutable, 5 mutable): mesh cavities of varying size.
            "yada" => StampParams {
                name: "yada",
                ars: vec![
                    block_ar("bound-upd", 2, 1, 3),
                    chase_ar("cavity-1", 8, 4),
                    chase_ar("cavity-2", 14, 3),
                    chase_ar("cavity-3", 22, 2),
                    chase_ar("cavity-4", 34, 2),
                    chase_ar("cavity-5", 46, 1),
                ],
                data_lines: 96,
                perm_entries: 96,
                think: (120, 320),
            },
            _ => return None,
        };
        Some(p)
    }
}

/// Builds the unrolled block program for `lines`/`writes`.
/// Entry: `r0 = block base`.
fn block_program(lines: u32, writes: u32) -> Program {
    let mut p = ProgramBuilder::new();
    for i in 0..lines as i64 {
        let off = i * LINE_BYTES as i64;
        p.ld(Reg(1), Reg(0), off);
        if (i as u32) < writes {
            p.addi(Reg(1), Reg(1), 1).st(Reg(0), off, Reg(1));
        }
    }
    p.compute(lines.max(2)).xend();
    p.build()
}

/// Builds the indirect-block program: load the region pointer, add the
/// host-chosen offset, then run the block. Entry: `r0 = &ptr slot`,
/// `r1 = byte offset`.
fn indirect_program(lines: u32, writes: u32) -> Program {
    let mut p = ProgramBuilder::new();
    p.ld(Reg(2), Reg(0), 0).add(Reg(2), Reg(2), Reg(1));
    for i in 0..lines as i64 {
        let off = i * LINE_BYTES as i64;
        p.ld(Reg(3), Reg(2), off);
        if (i as u32) < writes {
            p.addi(Reg(3), Reg(3), 1).st(Reg(2), off, Reg(3));
        }
    }
    p.compute(lines.max(2)).xend();
    p.build()
}

/// Builds the chase program: `steps` hops through the permutation table
/// (line-spaced entries), a +1 RMW of `cells[final]`, then an atomic swap
/// of two table entries. Entry: `r0 = perm base`, `r1 = start index`,
/// `r2 = cells base`, `r3 = &perm[i]`, `r4 = &perm[j]`.
fn chase_program(steps: u32) -> Program {
    let mut p = ProgramBuilder::new();
    p.mv(Reg(6), Reg(1));
    for _ in 0..steps {
        // idx = perm[idx]; entries are line-spaced: addr = base + idx*64.
        p.alui(AluOp::Shl, Reg(7), Reg(6), 6)
            .add(Reg(7), Reg(7), Reg(0))
            .ld(Reg(6), Reg(7), 0);
    }
    // cells[idx] += 1 (cells are line-spaced too).
    p.alui(AluOp::Shl, Reg(7), Reg(6), 6)
        .add(Reg(7), Reg(7), Reg(2))
        .ld(Reg(8), Reg(7), 0)
        .addi(Reg(8), Reg(8), 1)
        .st(Reg(7), 0, Reg(8));
    // Atomic swap of two permutation entries.
    p.ld(Reg(9), Reg(3), 0)
        .ld(Reg(10), Reg(4), 0)
        .st(Reg(3), 0, Reg(10))
        .st(Reg(4), 0, Reg(9))
        .compute(steps.max(2))
        .xend();
    p.build()
}

/// Builds the read-only chase program: `steps` hops, then `acc += idx`.
/// Entry: `r0 = perm base`, `r1 = start index`, `r2 = &private acc`.
fn chase_read_program(steps: u32) -> Program {
    let mut p = ProgramBuilder::new();
    p.mv(Reg(6), Reg(1));
    for _ in 0..steps {
        p.alui(AluOp::Shl, Reg(7), Reg(6), 6)
            .add(Reg(7), Reg(7), Reg(0))
            .ld(Reg(6), Reg(7), 0);
    }
    p.ld(Reg(8), Reg(2), 0)
        .add(Reg(8), Reg(8), Reg(6))
        .st(Reg(2), 0, Reg(8))
        .compute(steps.max(2))
        .xend();
    p.build()
}

/// A STAMP application model.
#[derive(Debug)]
pub struct StampModel {
    params: StampParams,
    size: Size,
    rngs: ThreadRngs,
    programs: Vec<Arc<Program>>,
    data: Addr,
    ptr_slot: Addr,
    perm: Addr,
    cells: Addr,
    remaining: Vec<u32>,
    accs: Vec<Addr>,
    expected_data_increments: u64,
    expected_cell_increments: u64,
}

impl StampModel {
    /// Creates the model for a STAMP application name; `None` for unknown
    /// names.
    pub fn by_name(name: &str, size: Size, seed: u64) -> Option<Self> {
        let params = StampParams::by_name(name)?;
        let programs = params
            .ars
            .iter()
            .map(|m| {
                Arc::new(match m.kind {
                    ArKind::Block { lines, writes } => block_program(lines, writes),
                    ArKind::Indirect { lines, writes } => indirect_program(lines, writes),
                    ArKind::Chase { steps } => chase_program(steps),
                    ArKind::ChaseRead { steps } => chase_read_program(steps),
                })
            })
            .collect();
        Some(StampModel {
            params,
            size,
            rngs: ThreadRngs::new(seed),
            programs,
            data: Addr::NULL,
            ptr_slot: Addr::NULL,
            perm: Addr::NULL,
            cells: Addr::NULL,
            remaining: vec![],
            accs: vec![],
            expected_data_increments: 0,
            expected_cell_increments: 0,
        })
    }

    /// The parameter table entry for this model.
    pub fn params(&self) -> &StampParams {
        &self.params
    }

    fn line_addr(base: Addr, i: u64) -> Addr {
        Addr(base.0 + i * LINE_BYTES)
    }

    fn pick_ar(&mut self, tid: usize) -> usize {
        let total: u32 = self.params.ars.iter().map(|a| a.weight).sum();
        let mut roll = self.rngs.get(tid).gen_range(0..total);
        for (i, a) in self.params.ars.iter().enumerate() {
            if roll < a.weight {
                return i;
            }
            roll -= a.weight;
        }
        unreachable!("weights sum checked")
    }
}

impl Workload for StampModel {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: self.params.name.into(),
            ars: self
                .params
                .ars
                .iter()
                .enumerate()
                .map(|(i, m)| ArSpec {
                    id: ArId(i as u32),
                    name: m.name.into(),
                    mutability: m.mutability,
                })
                .collect(),
        }
    }

    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        let words_per_line = LINE_BYTES / WORD_BYTES;
        self.data = mem.alloc_words(self.params.data_lines as u64 * words_per_line);
        self.ptr_slot = mem.alloc_words(1);
        mem.store_word(self.ptr_slot, self.data.0);
        self.perm = mem.alloc_words(self.params.perm_entries as u64 * words_per_line);
        self.cells = mem.alloc_words(self.params.perm_entries as u64 * words_per_line);
        // Initialise the permutation as a single cycle i -> i+1 so chases
        // traverse distinct lines.
        for i in 0..self.params.perm_entries as u64 {
            let next = (i + 1) % self.params.perm_entries as u64;
            mem.store_word(Self::line_addr(self.perm, i), next);
        }
        self.accs = (0..threads).map(|_| mem.alloc_words(1)).collect();
        self.remaining = vec![self.size.ops_per_thread(); threads];
        self.rngs.init(threads);
    }

    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        let idx = self.pick_ar(tid);
        let model = self.params.ars[idx];
        let think_range = self.params.think;
        let data_lines = self.params.data_lines as u64;
        let perm_entries = self.params.perm_entries as u64;
        let (data, ptr_slot, perm, cells) = (self.data, self.ptr_slot, self.perm, self.cells);
        let rng = self.rngs.get(tid);
        let think = rng.gen_range(think_range.0..think_range.1);
        let mut static_footprint = None;
        let args = match model.kind {
            ArKind::Block { lines, writes } => {
                let span = data_lines.saturating_sub(lines as u64).max(1);
                let start = rng.gen_range(0..span);
                self.expected_data_increments += writes as u64;
                static_footprint = Some(
                    (0..lines as u64)
                        .map(|i| Self::line_addr(data, start + i).0 / clear_mem::LINE_BYTES)
                        .map(clear_mem::LineAddr)
                        .collect(),
                );
                vec![(Reg(0), Self::line_addr(data, start).0)]
            }
            ArKind::Indirect { lines, writes } => {
                let span = data_lines.saturating_sub(lines as u64).max(1);
                let start = rng.gen_range(0..span);
                self.expected_data_increments += writes as u64;
                vec![(Reg(0), ptr_slot.0), (Reg(1), start * LINE_BYTES)]
            }
            ArKind::ChaseRead { .. } => {
                let start = rng.gen_range(0..perm_entries);
                vec![
                    (Reg(0), perm.0),
                    (Reg(1), start),
                    (Reg(2), self.accs[tid].0),
                ]
            }
            ArKind::Chase { .. } => {
                let start = rng.gen_range(0..perm_entries);
                let i = rng.gen_range(0..perm_entries);
                let mut j = rng.gen_range(0..perm_entries);
                if j == i {
                    j = (j + 1) % perm_entries;
                }
                self.expected_cell_increments += 1;
                vec![
                    (Reg(0), perm.0),
                    (Reg(1), start),
                    (Reg(2), cells.0),
                    (Reg(3), Self::line_addr(perm, i).0),
                    (Reg(4), Self::line_addr(perm, j).0),
                ]
            }
        };
        Some(ArInvocation {
            ar: ArId(idx as u32),
            program: Arc::clone(&self.programs[idx]),
            args,
            think_cycles: think,
            static_footprint,
        })
    }

    fn validate(&self, mem: &Memory) -> Result<(), String> {
        // 1. The table is still a permutation of 0..P (atomic swaps).
        let p = self.params.perm_entries as u64;
        let mut seen = vec![false; p as usize];
        for i in 0..p {
            let v = mem.load_word(Self::line_addr(self.perm, i));
            if v >= p {
                return Err(format!("perm[{i}] = {v} out of range"));
            }
            if seen[v as usize] {
                return Err(format!("perm value {v} duplicated: torn swap"));
            }
            seen[v as usize] = true;
        }
        // 2. Cell increments conserved.
        let cells: u64 = (0..p)
            .map(|i| mem.load_word(Self::line_addr(self.cells, i)))
            .sum();
        if cells != self.expected_cell_increments {
            return Err(format!(
                "Σcells {cells} != committed chase increments {}",
                self.expected_cell_increments
            ));
        }
        // 3. Data-region increments conserved.
        let data: u64 = (0..self.params.data_lines as u64)
            .map(|i| mem.load_word(Self::line_addr(self.data, i)))
            .sum();
        if data != self.expected_data_increments {
            return Err(format!(
                "Σdata {data} != committed block increments {}",
                self.expected_data_increments
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_stamp_names_resolve() {
        for n in [
            "bayes",
            "genome",
            "intruder",
            "kmeans-h",
            "kmeans-l",
            "labyrinth",
            "ssca2",
            "vacation-h",
            "vacation-l",
            "yada",
        ] {
            assert!(StampModel::by_name(n, Size::Tiny, 1).is_some(), "{n}");
        }
        assert!(StampModel::by_name("quake", Size::Tiny, 1).is_none());
    }

    #[test]
    fn labyrinth_footprints_exceed_alt() {
        let m = StampModel::by_name("labyrinth", Size::Tiny, 1).unwrap();
        assert!(m.params().ars.iter().all(|a| match a.kind {
            ArKind::Chase { steps } => steps > 32,
            _ => false,
        }));
    }

    #[test]
    fn kmeans_h_is_hotter_than_kmeans_l() {
        let h = StampModel::by_name("kmeans-h", Size::Tiny, 1).unwrap();
        let l = StampModel::by_name("kmeans-l", Size::Tiny, 1).unwrap();
        assert!(h.params().data_lines < l.params().data_lines);
    }

    #[test]
    fn initial_permutation_validates() {
        let mut m = StampModel::by_name("genome", Size::Tiny, 1).unwrap();
        let mut mem = Memory::new();
        m.setup(&mut mem, 2);
        assert!(m.validate(&mem).is_ok());
    }

    #[test]
    fn torn_swap_is_detected() {
        let mut m = StampModel::by_name("genome", Size::Tiny, 1).unwrap();
        let mut mem = Memory::new();
        m.setup(&mut mem, 1);
        // Duplicate one permutation value (a torn swap).
        let v = mem.load_word(StampModel::line_addr(m.perm, 0));
        mem.store_word(StampModel::line_addr(m.perm, 1), v);
        assert!(m.validate(&mem).is_err());
    }

    #[test]
    fn chase_args_in_range() {
        let mut m = StampModel::by_name("yada", Size::Tiny, 3).unwrap();
        let mut mem = Memory::new();
        m.setup(&mut mem, 1);
        while let Some(inv) = m.next_ar(0, &mem) {
            if inv.args.len() == 5 {
                let start = inv.args[1].1;
                assert!(start < m.params().perm_entries as u64);
                assert_ne!(inv.args[3].1, inv.args[4].1, "swap addresses must differ");
            }
        }
    }

    #[test]
    fn weights_cover_all_ars_eventually() {
        let mut m = StampModel::by_name("bayes", Size::Medium, 7).unwrap();
        let mut mem = Memory::new();
        m.setup(&mut mem, 4);
        let mut seen = std::collections::HashSet::new();
        for tid in 0..4 {
            while let Some(inv) = m.next_ar(tid, &mem) {
                seen.insert(inv.ar);
            }
        }
        assert!(
            seen.len() >= 10,
            "most of bayes' 14 ARs should appear, saw {}",
            seen.len()
        );
    }
}
