//! `stack` — a shared array LIFO \[20\]: push/pop at a single top index.
//! Top is loaded inside the AR (indirection); pop branches on it (empty
//! check).

use crate::common::{Size, ThreadRngs};
use clear_isa::{
    ArId, ArInvocation, ArSpec, Cond, Mutability, Program, ProgramBuilder, Reg, Workload,
    WorkloadMeta,
};
use clear_mem::{Addr, Memory};
use std::sync::Arc;

const AR_PUSH: ArId = ArId(0);
const AR_POP: ArId = ArId(1);

/// Push program: `slot[top] = value; top += 1`.
///
/// Entry registers: `r0 = &top`, `r1 = slots base`, `r2 = value`.
fn push_program() -> Program {
    let mut p = ProgramBuilder::new();
    p.ld(Reg(3), Reg(0), 0)
        .alui(clear_isa::AluOp::Shl, Reg(4), Reg(3), 3)
        .add(Reg(4), Reg(4), Reg(1))
        .st(Reg(4), 0, Reg(2))
        .addi(Reg(3), Reg(3), 1)
        .st(Reg(0), 0, Reg(3))
        .xend();
    p.build()
}

/// Pop program: `if top != 0 { top -= 1; acc += slot[top] }`.
///
/// Entry registers: `r0 = &top`, `r1 = slots base`, `r2 = &accumulator`,
/// `r3 = 0` (zero comparand).
fn pop_program() -> Program {
    let mut p = ProgramBuilder::new();
    let empty = p.label();
    p.ld(Reg(4), Reg(0), 0)
        .branch(Cond::Eq, Reg(4), Reg(3), empty)
        .subi(Reg(4), Reg(4), 1)
        .alui(clear_isa::AluOp::Shl, Reg(5), Reg(4), 3)
        .add(Reg(5), Reg(5), Reg(1))
        .ld(Reg(6), Reg(5), 0)
        .st(Reg(0), 0, Reg(4))
        .ld(Reg(7), Reg(2), 0)
        .add(Reg(7), Reg(7), Reg(6))
        .st(Reg(2), 0, Reg(7))
        .bind(empty)
        .xend();
    p.build()
}

/// The shared-stack benchmark with the push/pop conservation invariant.
#[derive(Debug)]
pub struct Stack {
    size: Size,
    rngs: ThreadRngs,
    top: Addr,
    slots: Addr,
    accs: Vec<Addr>,
    remaining: Vec<u32>,
    pushed_sum: u64,
    initial_elems: u64,
    push: Arc<Program>,
    pop: Arc<Program>,
}

impl Stack {
    /// Creates the benchmark.
    pub fn new(size: Size, seed: u64) -> Self {
        Stack {
            size,
            rngs: ThreadRngs::new(seed),
            top: Addr::NULL,
            slots: Addr::NULL,
            accs: vec![],
            remaining: vec![],
            pushed_sum: 0,
            initial_elems: 8,
            push: Arc::new(push_program()),
            pop: Arc::new(pop_program()),
        }
    }
}

impl Workload for Stack {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "stack".into(),
            ars: vec![
                ArSpec {
                    id: AR_PUSH,
                    name: "push".into(),
                    mutability: Mutability::LikelyImmutable,
                },
                ArSpec {
                    id: AR_POP,
                    name: "pop".into(),
                    mutability: Mutability::Mutable,
                },
            ],
        }
    }

    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        let capacity = self.initial_elems + threads as u64 * self.size.ops_per_thread() as u64 + 1;
        self.top = mem.alloc_words(1);
        self.slots = mem.alloc_words(capacity);
        self.accs = (0..threads).map(|_| mem.alloc_words(1)).collect();
        for i in 0..self.initial_elems {
            mem.store_word(self.slots.add_words(i), 2000 + i);
            self.pushed_sum = self.pushed_sum.wrapping_add(2000 + i);
        }
        mem.store_word(self.top, self.initial_elems);
        self.remaining = vec![self.size.ops_per_thread(); threads];
        self.rngs.init(threads);
    }

    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        let rng = self.rngs.get(tid);
        let is_push = rng.gen_bool(0.5);
        let value = rng.gen_range(1..1_000u64);
        let think = rng.gen_range(10..40);
        if is_push {
            self.pushed_sum = self.pushed_sum.wrapping_add(value);
            Some(ArInvocation {
                ar: AR_PUSH,
                program: Arc::clone(&self.push),
                args: vec![
                    (Reg(0), self.top.0),
                    (Reg(1), self.slots.0),
                    (Reg(2), value),
                ],
                think_cycles: think,
                static_footprint: None,
            })
        } else {
            Some(ArInvocation {
                ar: AR_POP,
                program: Arc::clone(&self.pop),
                args: vec![
                    (Reg(0), self.top.0),
                    (Reg(1), self.slots.0),
                    (Reg(2), self.accs[tid].0),
                    (Reg(3), 0),
                ],
                think_cycles: think,
                static_footprint: None,
            })
        }
    }

    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let top = mem.load_word(self.top);
        let live: u64 = (0..top)
            .map(|i| mem.load_word(self.slots.add_words(i)))
            .fold(0u64, u64::wrapping_add);
        let consumed: u64 = self
            .accs
            .iter()
            .map(|&a| mem.load_word(a))
            .fold(0u64, u64::wrapping_add);
        let got = live.wrapping_add(consumed);
        if got == self.pushed_sum {
            Ok(())
        } else {
            Err(format!(
                "stack conservation broken: live+consumed {got} != pushed {}",
                self.pushed_sum
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_classification() {
        let m = Stack::new(Size::Tiny, 1).meta();
        assert_eq!(m.ars.len(), 2);
        assert_eq!(m.ars[0].mutability, Mutability::LikelyImmutable);
        assert_eq!(m.ars[1].mutability, Mutability::Mutable);
    }

    #[test]
    fn initial_state_validates() {
        let mut w = Stack::new(Size::Tiny, 1);
        let mut mem = Memory::new();
        w.setup(&mut mem, 2);
        assert!(w.validate(&mem).is_ok());
    }

    #[test]
    fn manual_pop_conserves() {
        let mut w = Stack::new(Size::Tiny, 1);
        let mut mem = Memory::new();
        w.setup(&mut mem, 1);
        let top = mem.load_word(w.top);
        let v = mem.load_word(w.slots.add_words(top - 1));
        mem.store_word(w.top, top - 1);
        mem.store_word(w.accs[0], v);
        assert!(w.validate(&mem).is_ok());
        mem.store_word(w.accs[0], v + 1);
        assert!(w.validate(&mem).is_err());
    }
}
