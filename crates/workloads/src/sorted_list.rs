//! `sorted-list` — a singly-linked sorted list \[20\]. The traversal ARs
//! are the paper's Listing 3: addresses come from `curr->next`
//! indirections whose values change as the list mutates — **mutable** ARs.
//! A third AR bumps a statistics counter at a fixed address (immutable),
//! matching Table 1's 1/0/2 split.

use crate::common::{Size, ThreadRngs};
use clear_isa::{
    ArId, ArInvocation, ArSpec, Cond, Mutability, Program, ProgramBuilder, Reg, Workload,
    WorkloadMeta,
};
use clear_mem::{Addr, Memory};
use std::sync::Arc;

const AR_INSERT: ArId = ArId(0);
const AR_COUNT: ArId = ArId(1);
const AR_BUMP: ArId = ArId(2);

/// Node layout: `[value, next]`, one node per cacheline.
const VALUE_OFF: i64 = 0;
const NEXT_OFF: i64 = 8;

/// Insert program. Entry: `r0 = head sentinel`, `r1 = new node`,
/// `r2 = value`, `r5 = 0`.
fn insert_program() -> Program {
    let mut p = ProgramBuilder::new();
    let (lp, place) = {
        let lp = p.label();
        let place = p.label();
        (lp, place)
    };
    p.mv(Reg(3), Reg(0)) // prev = head
        .ld(Reg(4), Reg(3), NEXT_OFF) // cur = prev.next
        .bind(lp)
        .branch(Cond::Eq, Reg(4), Reg(5), place) // cur == null
        .ld(Reg(6), Reg(4), VALUE_OFF)
        .branch(Cond::Ge, Reg(6), Reg(2), place) // cur.value >= v
        .mv(Reg(3), Reg(4)) // prev = cur
        .ld(Reg(4), Reg(3), NEXT_OFF)
        .jmp(lp)
        .bind(place)
        .st(Reg(1), VALUE_OFF, Reg(2)) // node.value = v
        .st(Reg(1), NEXT_OFF, Reg(4)) // node.next = cur
        .st(Reg(3), NEXT_OFF, Reg(1)) // prev.next = node
        .xend();
    p.build()
}

/// Count-occurrences program (Listing 3), exploiting sortedness to stop at
/// the first value greater than the target. Entry: `r0 = head sentinel`,
/// `r1 = value`, `r5 = 0`.
fn count_program() -> Program {
    let mut p = ProgramBuilder::new();
    let lp = p.label();
    let skip = p.label();
    let done = p.label();
    p.ld(Reg(4), Reg(0), NEXT_OFF) // cur = head.next
        .li(Reg(3), 0)
        .bind(lp)
        .branch(Cond::Eq, Reg(4), Reg(5), done)
        .ld(Reg(6), Reg(4), VALUE_OFF)
        .branch(Cond::Lt, Reg(1), Reg(6), done) // cur.value > target: stop
        .branch(Cond::Ne, Reg(6), Reg(1), skip)
        .addi(Reg(3), Reg(3), 1)
        .bind(skip)
        .ld(Reg(4), Reg(4), NEXT_OFF)
        .jmp(lp)
        .bind(done)
        .xend();
    p.build()
}

/// Statistics-bump program (immutable): `*counter += 1`. Entry:
/// `r0 = &counter`.
fn bump_program() -> Program {
    let mut p = ProgramBuilder::new();
    p.ld(Reg(1), Reg(0), 0)
        .addi(Reg(1), Reg(1), 1)
        .st(Reg(0), 0, Reg(1))
        .xend();
    p.build()
}

/// The sorted-list benchmark with structural validation: the final list is
/// sorted, contains exactly the committed inserts, and the statistics
/// counter matches the committed bumps.
#[derive(Debug)]
pub struct SortedList {
    size: Size,
    rngs: ThreadRngs,
    head: Addr,
    counter: Addr,
    pool: Vec<Addr>,
    next_node: usize,
    remaining: Vec<u32>,
    inserted: Vec<u64>,
    bumps: u64,
    insert: Arc<Program>,
    count: Arc<Program>,
    bump: Arc<Program>,
}

impl SortedList {
    /// Creates the benchmark.
    pub fn new(size: Size, seed: u64) -> Self {
        SortedList {
            size,
            rngs: ThreadRngs::new(seed),
            head: Addr::NULL,
            counter: Addr::NULL,
            pool: vec![],
            next_node: 0,
            remaining: vec![],
            inserted: vec![],
            bumps: 0,
            insert: Arc::new(insert_program()),
            count: Arc::new(count_program()),
            bump: Arc::new(bump_program()),
        }
    }

    fn walk(&self, mem: &Memory) -> Vec<u64> {
        let mut vals = Vec::new();
        let mut cur = mem.load_word(Addr(self.head.0 + NEXT_OFF as u64));
        while cur != 0 {
            vals.push(mem.load_word(Addr(cur)));
            cur = mem.load_word(Addr(cur + NEXT_OFF as u64));
            assert!(vals.len() < 1_000_000, "cycle in list");
        }
        vals
    }
}

impl Workload for SortedList {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "sorted-list".into(),
            ars: vec![
                ArSpec {
                    id: AR_INSERT,
                    name: "insert".into(),
                    mutability: Mutability::Mutable,
                },
                ArSpec {
                    id: AR_COUNT,
                    name: "count".into(),
                    mutability: Mutability::Mutable,
                },
                ArSpec {
                    id: AR_BUMP,
                    name: "bump".into(),
                    mutability: Mutability::Immutable,
                },
            ],
        }
    }

    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.head = mem.alloc_words(2);
        self.counter = mem.alloc_words(1);
        let max_inserts = threads * self.size.ops_per_thread() as usize;
        self.pool = (0..max_inserts).map(|_| mem.alloc_words(2)).collect();
        // A few initial elements keep early traversals non-trivial.
        for v in [100u64, 300, 500, 700] {
            let node = mem.alloc_words(2);
            let mut prev = self.head;
            let mut cur = mem.load_word(Addr(prev.0 + NEXT_OFF as u64));
            while cur != 0 && mem.load_word(Addr(cur)) < v {
                prev = Addr(cur);
                cur = mem.load_word(Addr(cur + NEXT_OFF as u64));
            }
            mem.store_word(node, v);
            mem.store_word(Addr(node.0 + NEXT_OFF as u64), cur);
            mem.store_word(Addr(prev.0 + NEXT_OFF as u64), node.0);
            self.inserted.push(v);
        }
        self.remaining = vec![self.size.ops_per_thread(); threads];
        self.rngs.init(threads);
    }

    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        let rng = self.rngs.get(tid);
        let dice = rng.gen_f64();
        let value = rng.gen_range(1..1_000u64);
        let think = rng.gen_range(15..50);
        if dice < 0.15 {
            let node = self.pool[self.next_node];
            self.next_node += 1;
            self.inserted.push(value);
            Some(ArInvocation {
                ar: AR_INSERT,
                program: Arc::clone(&self.insert),
                args: vec![
                    (Reg(0), self.head.0),
                    (Reg(1), node.0),
                    (Reg(2), value),
                    (Reg(5), 0),
                ],
                think_cycles: think,
                static_footprint: None,
            })
        } else if dice < 0.55 {
            Some(ArInvocation {
                ar: AR_COUNT,
                program: Arc::clone(&self.count),
                args: vec![(Reg(0), self.head.0), (Reg(1), value), (Reg(5), 0)],
                think_cycles: think,
                static_footprint: None,
            })
        } else {
            self.bumps += 1;
            Some(ArInvocation {
                ar: AR_BUMP,
                program: Arc::clone(&self.bump),
                args: vec![(Reg(0), self.counter.0)],
                think_cycles: think,
                static_footprint: Some(vec![self.counter.line()]),
            })
        }
    }

    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let vals = self.walk(mem);
        if !vals.windows(2).all(|w| w[0] <= w[1]) {
            return Err("list not sorted".into());
        }
        let mut want = self.inserted.clone();
        want.sort_unstable();
        if vals != want {
            return Err(format!(
                "list contents wrong: {} nodes, expected {}",
                vals.len(),
                want.len()
            ));
        }
        let bumps = mem.load_word(self.counter);
        if bumps != self.bumps {
            return Err(format!("counter {bumps} != committed bumps {}", self.bumps));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_classification() {
        let m = SortedList::new(Size::Tiny, 1).meta();
        let count = |mu| m.ars.iter().filter(|a| a.mutability == mu).count();
        assert_eq!(count(Mutability::Immutable), 1);
        assert_eq!(count(Mutability::Mutable), 2);
    }

    #[test]
    fn initial_list_is_sorted_and_validates() {
        let mut w = SortedList::new(Size::Tiny, 1);
        let mut mem = Memory::new();
        w.setup(&mut mem, 1);
        assert_eq!(w.walk(&mem), vec![100, 300, 500, 700]);
        assert!(w.validate(&mem).is_ok());
    }

    #[test]
    fn validate_catches_unsorted_list() {
        let mut w = SortedList::new(Size::Tiny, 1);
        let mut mem = Memory::new();
        w.setup(&mut mem, 1);
        // Corrupt the first node's value above its successor.
        let first = mem.load_word(Addr(w.head.0 + NEXT_OFF as u64));
        mem.store_word(Addr(first), 9999);
        assert!(w.validate(&mem).is_err());
    }

    #[test]
    fn insert_args_use_fresh_pool_nodes() {
        let mut w = SortedList::new(Size::Tiny, 3);
        let mut mem = Memory::new();
        w.setup(&mut mem, 1);
        let mut nodes = std::collections::HashSet::new();
        while let Some(inv) = w.next_ar(0, &mem) {
            if inv.ar == AR_INSERT {
                assert!(nodes.insert(inv.args[1].1), "node reused");
            }
        }
    }
}
