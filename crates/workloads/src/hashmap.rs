//! `hashmap` — a chained hash table \[8, 18\]: insert traverses the bucket
//! chain to append, lookup and update traverse comparing keys. All three
//! ARs chase `node->next` pointers — **mutable** per Table 1.

use crate::common::{Size, ThreadRngs};
use clear_isa::{
    ArId, ArInvocation, ArSpec, Cond, Mutability, Program, ProgramBuilder, Reg, Workload,
    WorkloadMeta,
};
use clear_mem::{Addr, Memory};
use std::sync::Arc;

const AR_INSERT: ArId = ArId(0);
const AR_LOOKUP: ArId = ArId(1);
const AR_UPDATE: ArId = ArId(2);

/// Node layout: `[key, next]` in the first line; the mutable value lives in
/// the node's second cacheline so updates do not false-share with chain
/// traversals (padded-node C idiom).
const KEY_OFF: i64 = 0;
const NEXT_OFF: i64 = 8;
const VAL_OFF: i64 = 64;

/// Insert program: initialise the node and append it at the end of its
/// bucket chain. Entry: `r0 = &bucket head`, `r1 = node`, `r2 = key`,
/// `r5 = 0`.
fn insert_program() -> Program {
    let mut p = ProgramBuilder::new();
    let lp = p.label();
    let append = p.label();
    let set_head = p.label();
    let end = p.label();
    p.st(Reg(1), KEY_OFF, Reg(2))
        .st(Reg(1), VAL_OFF, Reg(5))
        .st(Reg(1), NEXT_OFF, Reg(5))
        .ld(Reg(4), Reg(0), 0) // cur = head
        .branch(Cond::Eq, Reg(4), Reg(5), set_head)
        .bind(lp)
        .ld(Reg(6), Reg(4), NEXT_OFF)
        .branch(Cond::Eq, Reg(6), Reg(5), append)
        .mv(Reg(4), Reg(6))
        .jmp(lp)
        .bind(append)
        .st(Reg(4), NEXT_OFF, Reg(1))
        .jmp(end)
        .bind(set_head)
        .st(Reg(0), 0, Reg(1))
        .bind(end)
        .xend();
    p.build()
}

/// Lookup program: count key hits into a private accumulator. Entry:
/// `r0 = &bucket head`, `r1 = key`, `r2 = &acc`, `r5 = 0`.
fn lookup_program() -> Program {
    let mut p = ProgramBuilder::new();
    let lp = p.label();
    let next = p.label();
    let done = p.label();
    p.ld(Reg(4), Reg(0), 0)
        .bind(lp)
        .branch(Cond::Eq, Reg(4), Reg(5), done)
        .ld(Reg(6), Reg(4), KEY_OFF)
        .branch(Cond::Ne, Reg(6), Reg(1), next)
        .ld(Reg(7), Reg(2), 0)
        .addi(Reg(7), Reg(7), 1)
        .st(Reg(2), 0, Reg(7))
        .bind(next)
        .ld(Reg(4), Reg(4), NEXT_OFF)
        .jmp(lp)
        .bind(done)
        .xend();
    p.build()
}

/// Update program: find the key and increment its value. Entry:
/// `r0 = &bucket head`, `r1 = key`, `r5 = 0`.
fn update_program() -> Program {
    let mut p = ProgramBuilder::new();
    let lp = p.label();
    let next = p.label();
    let done = p.label();
    p.ld(Reg(4), Reg(0), 0)
        .bind(lp)
        .branch(Cond::Eq, Reg(4), Reg(5), done)
        .ld(Reg(6), Reg(4), KEY_OFF)
        .branch(Cond::Ne, Reg(6), Reg(1), next)
        .ld(Reg(7), Reg(4), VAL_OFF)
        .addi(Reg(7), Reg(7), 1)
        .st(Reg(4), VAL_OFF, Reg(7))
        .jmp(done)
        .bind(next)
        .ld(Reg(4), Reg(4), NEXT_OFF)
        .jmp(lp)
        .bind(done)
        .xend();
    p.build()
}

/// The chained-hash-table benchmark. Keys are unique per insertion
/// (`tid * 1e6 + n`); lookups and updates target keys the same thread
/// already inserted, so every probe is a guaranteed hit — which makes
/// `Σ accumulators == committed lookups` and `Σ values == committed
/// updates` exact invariants.
#[derive(Debug)]
pub struct HashMapBench {
    size: Size,
    rngs: ThreadRngs,
    buckets: Addr,
    n_buckets: usize,
    pool: Vec<Addr>,
    next_node: usize,
    accs: Vec<Addr>,
    remaining: Vec<u32>,
    inserted_keys: Vec<Vec<u64>>,
    lookups: u64,
    updates: u64,
    insert: Arc<Program>,
    lookup: Arc<Program>,
    update: Arc<Program>,
}

impl HashMapBench {
    /// Creates the benchmark.
    pub fn new(size: Size, seed: u64) -> Self {
        HashMapBench {
            size,
            rngs: ThreadRngs::new(seed),
            buckets: Addr::NULL,
            n_buckets: 8 * size.scale(),
            pool: vec![],
            next_node: 0,
            accs: vec![],
            remaining: vec![],
            inserted_keys: vec![],
            lookups: 0,
            updates: 0,
            insert: Arc::new(insert_program()),
            lookup: Arc::new(lookup_program()),
            update: Arc::new(update_program()),
        }
    }

    fn bucket_addr(&self, key: u64) -> Addr {
        self.buckets.add_words(key % self.n_buckets as u64)
    }

    fn key_for(&self, tid: usize, n: usize) -> u64 {
        tid as u64 * 1_000_000 + n as u64
    }
}

impl Workload for HashMapBench {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "hashmap".into(),
            ars: vec![
                ArSpec {
                    id: AR_INSERT,
                    name: "insert".into(),
                    mutability: Mutability::Mutable,
                },
                ArSpec {
                    id: AR_LOOKUP,
                    name: "lookup".into(),
                    mutability: Mutability::Mutable,
                },
                ArSpec {
                    id: AR_UPDATE,
                    name: "update".into(),
                    mutability: Mutability::Mutable,
                },
            ],
        }
    }

    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.buckets = mem.alloc_words(self.n_buckets as u64);
        let max_nodes = threads * self.size.ops_per_thread() as usize;
        self.pool = (0..max_nodes).map(|_| mem.alloc_words(16)).collect();
        self.accs = (0..threads).map(|_| mem.alloc_words(1)).collect();
        self.remaining = vec![self.size.ops_per_thread(); threads];
        self.inserted_keys = vec![vec![]; threads];
        self.rngs.init(threads);
    }

    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        let have_keys = !self.inserted_keys[tid].is_empty();
        let rng = self.rngs.get(tid);
        let dice = rng.gen_f64();
        let think = rng.gen_range(15..50);
        if dice < 0.4 || !have_keys {
            let n = self.inserted_keys[tid].len();
            let key = self.key_for(tid, n);
            let node = self.pool[self.next_node];
            self.next_node += 1;
            self.inserted_keys[tid].push(key);
            Some(ArInvocation {
                ar: AR_INSERT,
                program: Arc::clone(&self.insert),
                args: vec![
                    (Reg(0), self.bucket_addr(key).0),
                    (Reg(1), node.0),
                    (Reg(2), key),
                    (Reg(5), 0),
                ],
                think_cycles: think,
                static_footprint: None,
            })
        } else {
            let idx = rng.gen_range(0..self.inserted_keys[tid].len());
            let key = self.inserted_keys[tid][idx];
            if dice < 0.75 {
                self.lookups += 1;
                Some(ArInvocation {
                    ar: AR_LOOKUP,
                    program: Arc::clone(&self.lookup),
                    args: vec![
                        (Reg(0), self.bucket_addr(key).0),
                        (Reg(1), key),
                        (Reg(2), self.accs[tid].0),
                        (Reg(5), 0),
                    ],
                    think_cycles: think,
                    static_footprint: None,
                })
            } else {
                self.updates += 1;
                Some(ArInvocation {
                    ar: AR_UPDATE,
                    program: Arc::clone(&self.update),
                    args: vec![
                        (Reg(0), self.bucket_addr(key).0),
                        (Reg(1), key),
                        (Reg(5), 0),
                    ],
                    think_cycles: think,
                    static_footprint: None,
                })
            }
        }
    }

    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let mut nodes = 0usize;
        let mut value_sum = 0u64;
        for b in 0..self.n_buckets {
            let mut cur = mem.load_word(self.buckets.add_words(b as u64));
            let mut steps = 0;
            while cur != 0 {
                let key = mem.load_word(Addr(cur + KEY_OFF as u64));
                if key % self.n_buckets as u64 != b as u64 {
                    return Err(format!("key {key} in wrong bucket {b}"));
                }
                value_sum += mem.load_word(Addr(cur + VAL_OFF as u64));
                cur = mem.load_word(Addr(cur + NEXT_OFF as u64));
                nodes += 1;
                steps += 1;
                if steps > self.pool.len() + 1 {
                    return Err(format!("cycle in bucket {b}"));
                }
            }
        }
        let want_nodes: usize = self.inserted_keys.iter().map(Vec::len).sum();
        if nodes != want_nodes {
            return Err(format!("{nodes} nodes reachable, expected {want_nodes}"));
        }
        if value_sum != self.updates {
            return Err(format!(
                "Σvalues {value_sum} != committed updates {}",
                self.updates
            ));
        }
        let acc_sum: u64 = self.accs.iter().map(|&a| mem.load_word(a)).sum();
        if acc_sum != self.lookups {
            return Err(format!(
                "Σaccs {acc_sum} != committed lookups {}",
                self.lookups
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_mutable_ars() {
        let m = HashMapBench::new(Size::Tiny, 1).meta();
        assert_eq!(m.ars.len(), 3);
        assert!(m.ars.iter().all(|a| a.mutability == Mutability::Mutable));
    }

    #[test]
    fn empty_table_validates() {
        let mut w = HashMapBench::new(Size::Tiny, 1);
        let mut mem = Memory::new();
        w.setup(&mut mem, 2);
        assert!(w.validate(&mem).is_ok());
    }

    #[test]
    fn manual_insert_is_reachable() {
        let mut w = HashMapBench::new(Size::Tiny, 1);
        let mut mem = Memory::new();
        w.setup(&mut mem, 1);
        let inv = w.next_ar(0, &mem).unwrap();
        assert_eq!(inv.ar, AR_INSERT);
        let (bucket, node, key) = (inv.args[0].1, inv.args[1].1, inv.args[2].1);
        // Apply the insert by hand (empty bucket case).
        mem.store_word(Addr(node), key);
        mem.store_word(Addr(node + NEXT_OFF as u64), 0);
        mem.store_word(Addr(node + VAL_OFF as u64), 0);
        mem.store_word(Addr(bucket), node);
        assert!(w.validate(&mem).is_ok());
    }

    #[test]
    fn first_op_is_always_insert() {
        for seed in 0..5 {
            let mut w = HashMapBench::new(Size::Tiny, seed);
            let mut mem = Memory::new();
            w.setup(&mut mem, 1);
            assert_eq!(w.next_ar(0, &mem).unwrap().ar, AR_INSERT);
        }
    }

    #[test]
    fn keys_are_thread_unique() {
        let w = HashMapBench::new(Size::Tiny, 1);
        assert_ne!(w.key_for(0, 5), w.key_for(1, 5));
        assert_ne!(w.key_for(0, 5), w.key_for(0, 6));
    }
}
