//! The paper's 19 benchmarks, re-implemented as mini-ISA atomic-region
//! generators over simulated shared memory.
//!
//! Two families:
//!
//! * **Data-structure benchmarks** (arrayswap, bitcoin, bst, deque,
//!   hashmap, mwobject, queue, stack, sorted-list) are *real*
//!   implementations: the pointer chasing, index arithmetic and branching
//!   happen inside the AR through simulated loads/stores, so footprint
//!   mutability emerges exactly as in the original C benchmarks.
//! * **STAMP application models** (bayes, genome, intruder, kmeans-h/l,
//!   labyrinth, ssca2, vacation-h/l, yada) are synthetic AR generators
//!   whose per-AR footprint size, indirection structure, contention and AR
//!   count match the paper's Table 1 characterisation (see
//!   [`stamp`] for the per-application parameters and DESIGN.md for the
//!   substitution argument).
//!
//! Every workload:
//!
//! * is deterministic for a fixed seed (per-thread RNG streams);
//! * reports its static AR classification ([`WorkloadMeta`]) for the
//!   Table 1 harness;
//! * checks a *real* atomicity invariant in [`Workload::validate`]
//!   (conserved sums, permutation preservation, structural integrity), so
//!   integration tests prove the simulated HTM/CLEAR machinery is correct,
//!   not just fast.
//!
//! [`Workload::validate`]: clear_isa::Workload::validate
//! [`WorkloadMeta`]: clear_isa::WorkloadMeta
//!
//! # Examples
//!
//! ```
//! use clear_workloads::{by_name, Size};
//!
//! let w = by_name("arrayswap", Size::Tiny, 7).expect("known benchmark");
//! assert_eq!(w.meta().name, "arrayswap");
//! assert_eq!(w.meta().ars.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arrayswap;
mod bitcoin;
mod bst;
mod common;
mod deque;
mod hashmap;
mod mwobject;
mod queue;
mod sorted_list;
mod stack;
pub mod stamp;

pub use arrayswap::ArraySwap;
pub use bitcoin::Bitcoin;
pub use bst::Bst;
pub use common::Size;
pub use deque::Deque;
pub use hashmap::HashMapBench;
pub use mwobject::MwObject;
pub use queue::Queue;
pub use sorted_list::SortedList;
pub use stack::Stack;
pub use stamp::StampModel;

use clear_isa::Workload;

/// Names of all 19 benchmarks in the paper's figure order.
pub const BENCHMARK_NAMES: [&str; 19] = [
    "arrayswap",
    "bitcoin",
    "bst",
    "deque",
    "hashmap",
    "mwobject",
    "queue",
    "stack",
    "sorted-list",
    "bayes",
    "genome",
    "intruder",
    "kmeans-h",
    "kmeans-l",
    "labyrinth",
    "ssca2",
    "vacation-h",
    "vacation-l",
    "yada",
];

/// Constructs a benchmark by its figure name.
///
/// Returns `None` for unknown names.
pub fn by_name(name: &str, size: Size, seed: u64) -> Option<Box<dyn Workload>> {
    Some(match name {
        "arrayswap" => Box::new(ArraySwap::new(size, seed)),
        "bitcoin" => Box::new(Bitcoin::new(size, seed)),
        "bst" => Box::new(Bst::new(size, seed)),
        "deque" => Box::new(Deque::new(size, seed)),
        "hashmap" => Box::new(HashMapBench::new(size, seed)),
        "mwobject" => Box::new(MwObject::new(size, seed)),
        "queue" => Box::new(Queue::new(size, seed)),
        "stack" => Box::new(Stack::new(size, seed)),
        "sorted-list" => Box::new(SortedList::new(size, seed)),
        other => Box::new(StampModel::by_name(other, size, seed)?),
    })
}

/// Constructs all 19 benchmarks.
pub fn all_benchmarks(size: Size, seed: u64) -> Vec<Box<dyn Workload>> {
    BENCHMARK_NAMES
        .iter()
        .map(|n| by_name(n, size, seed).expect("registry names are valid"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_names() {
        let all = all_benchmarks(Size::Tiny, 1);
        assert_eq!(all.len(), 19);
        for (w, n) in all.iter().zip(BENCHMARK_NAMES) {
            assert_eq!(w.meta().name, n);
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("nonexistent", Size::Tiny, 1).is_none());
    }

    #[test]
    fn table1_ar_counts_match_paper() {
        let expected = [
            ("arrayswap", 2),
            ("bitcoin", 1),
            ("bst", 3),
            ("deque", 2),
            ("hashmap", 3),
            ("mwobject", 1),
            ("queue", 2),
            ("stack", 2),
            ("sorted-list", 3),
            ("bayes", 14),
            ("genome", 5),
            ("intruder", 3),
            ("kmeans-h", 3),
            ("kmeans-l", 3),
            ("labyrinth", 3),
            ("ssca2", 3),
            ("vacation-h", 3),
            ("vacation-l", 3),
            ("yada", 6),
        ];
        for (name, count) in expected {
            let w = by_name(name, Size::Tiny, 1).unwrap();
            assert_eq!(w.meta().ars.len(), count, "{name}");
        }
    }

    #[test]
    fn table1_classification_matches_paper() {
        use clear_isa::Mutability::*;
        // (name, immutable, likely-immutable, mutable) — Table 1.
        let expected = [
            ("arrayswap", 2, 0, 0),
            ("bitcoin", 0, 1, 0),
            ("bst", 0, 0, 3),
            ("deque", 0, 1, 1),
            ("hashmap", 0, 0, 3),
            ("mwobject", 1, 0, 0),
            ("queue", 0, 1, 1),
            ("stack", 0, 1, 1),
            ("sorted-list", 1, 0, 2),
            ("bayes", 0, 5, 9),
            ("genome", 0, 0, 5),
            ("intruder", 0, 2, 1),
            ("kmeans-h", 1, 2, 0),
            ("kmeans-l", 1, 2, 0),
            ("labyrinth", 0, 0, 3),
            ("ssca2", 2, 1, 0),
            ("vacation-h", 0, 1, 2),
            ("vacation-l", 0, 1, 2),
            ("yada", 1, 0, 5),
        ];
        for (name, imm, likely, mutable) in expected {
            let w = by_name(name, Size::Tiny, 1).unwrap();
            let meta = w.meta();
            let count = |m| meta.ars.iter().filter(|a| a.mutability == m).count();
            assert_eq!(count(Immutable), imm, "{name} immutable");
            assert_eq!(count(LikelyImmutable), likely, "{name} likely");
            assert_eq!(count(Mutable), mutable, "{name} mutable");
        }
    }
}
