//! `mwobject` — four additions to four different words in the *same*
//! cacheline \[12, 13\]: the highest-contention immutable AR in the suite
//! and the flagship NS-CL case (Fig. 12).

use crate::common::{Size, ThreadRngs};
use clear_isa::{
    ArId, ArInvocation, ArSpec, Mutability, Program, ProgramBuilder, Reg, Workload, WorkloadMeta,
};
use clear_mem::{Addr, Memory};
use std::sync::Arc;

const AR_UPDATE: ArId = ArId(0);

/// The multi-word-object benchmark: every thread atomically increments the
/// four words of one shared object that fits in a single cacheline.
#[derive(Debug)]
pub struct MwObject {
    size: Size,
    rngs: ThreadRngs,
    object: Addr,
    remaining: Vec<u32>,
    issued: u64,
    program: Arc<Program>,
}

impl MwObject {
    /// Creates the benchmark.
    pub fn new(size: Size, seed: u64) -> Self {
        let mut p = ProgramBuilder::new();
        for i in 0..4i64 {
            p.ld(Reg(1), Reg(0), i * 8)
                .addi(Reg(1), Reg(1), 1)
                .st(Reg(0), i * 8, Reg(1));
        }
        p.xend();
        MwObject {
            size,
            rngs: ThreadRngs::new(seed),
            object: Addr::NULL,
            remaining: vec![],
            issued: 0,
            program: Arc::new(p.build()),
        }
    }
}

impl Workload for MwObject {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "mwobject".into(),
            ars: vec![ArSpec {
                id: AR_UPDATE,
                name: "add4".into(),
                mutability: Mutability::Immutable,
            }],
        }
    }

    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.object = mem.alloc_line();
        self.remaining = vec![self.size.ops_per_thread(); threads];
        self.rngs.init(threads);
    }

    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        self.issued += 1;
        let think = self.rngs.get(tid).gen_range(5..25);
        Some(ArInvocation {
            ar: AR_UPDATE,
            program: Arc::clone(&self.program),
            args: vec![(Reg(0), self.object.0)],
            think_cycles: think,
            static_footprint: Some(vec![self.object.line()]),
        })
    }

    fn validate(&self, mem: &Memory) -> Result<(), String> {
        for i in 0..4 {
            let v = mem.load_word(self.object.add_words(i));
            if v != self.issued {
                return Err(format!(
                    "word {i} is {v}, expected {} (lost or torn update)",
                    self.issued
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_immutable_ar() {
        let m = MwObject::new(Size::Tiny, 1).meta();
        assert_eq!(m.ars.len(), 1);
        assert_eq!(m.ars[0].mutability, Mutability::Immutable);
    }

    #[test]
    fn object_fits_one_line() {
        let mut w = MwObject::new(Size::Tiny, 1);
        let mut mem = Memory::new();
        w.setup(&mut mem, 1);
        assert_eq!(w.object.line(), w.object.add_words(3).line());
    }

    #[test]
    fn validate_counts_issued_updates() {
        let mut w = MwObject::new(Size::Tiny, 1);
        let mut mem = Memory::new();
        w.setup(&mut mem, 1);
        let inv = w.next_ar(0, &mem).unwrap();
        assert_eq!(inv.args[0].1, w.object.0);
        // Apply the update by hand.
        for i in 0..4 {
            let a = w.object.add_words(i);
            let v = mem.load_word(a);
            mem.store_word(a, v + 1);
        }
        assert!(w.validate(&mem).is_ok());
        // A lost word fails.
        mem.store_word(w.object, 0);
        assert!(w.validate(&mem).is_err());
    }
}
