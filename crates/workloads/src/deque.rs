//! `deque` — work-stealing deques in the style of Chase–Lev \[7, 24, 25\]:
//! each thread pushes work onto the back of its own deque and steals from
//! the front of a random victim's.

use crate::common::{Size, ThreadRngs};
use crate::queue::{dequeue_program, enqueue_program};
use clear_isa::{ArId, ArInvocation, ArSpec, Mutability, Program, Reg, Workload, WorkloadMeta};
use clear_mem::{Addr, Memory};
use std::sync::Arc;

const AR_PUSH: ArId = ArId(0);
const AR_STEAL: ArId = ArId(1);

/// Per-thread deque state laid out in simulated memory.
#[derive(Debug, Clone, Copy)]
struct DequeMem {
    front: Addr,
    back: Addr,
    slots: Addr,
}

/// Work-stealing deque benchmark.
///
/// Reuses the queue substrate: pushing to the back is an enqueue on the
/// owner's deque; stealing is a dequeue from the front of a victim's deque.
/// The conservation invariant spans all deques and all stealers'
/// accumulators.
#[derive(Debug)]
pub struct Deque {
    size: Size,
    rngs: ThreadRngs,
    deques: Vec<DequeMem>,
    accs: Vec<Addr>,
    remaining: Vec<u32>,
    pushed_sum: u64,
    push: Arc<Program>,
    steal: Arc<Program>,
}

impl Deque {
    /// Creates the benchmark.
    pub fn new(size: Size, seed: u64) -> Self {
        Deque {
            size,
            rngs: ThreadRngs::new(seed),
            deques: vec![],
            accs: vec![],
            remaining: vec![],
            pushed_sum: 0,
            push: Arc::new(enqueue_program()),
            steal: Arc::new(dequeue_program()),
        }
    }
}

impl Workload for Deque {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "deque".into(),
            ars: vec![
                ArSpec {
                    id: AR_PUSH,
                    name: "push-back".into(),
                    mutability: Mutability::LikelyImmutable,
                },
                ArSpec {
                    id: AR_STEAL,
                    name: "steal-front".into(),
                    mutability: Mutability::Mutable,
                },
            ],
        }
    }

    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        let capacity = self.size.ops_per_thread() as u64 + 2;
        self.deques = (0..threads)
            .map(|_| DequeMem {
                front: mem.alloc_words(1),
                back: mem.alloc_words(1),
                slots: mem.alloc_words(capacity),
            })
            .collect();
        self.accs = (0..threads).map(|_| mem.alloc_words(1)).collect();
        self.remaining = vec![self.size.ops_per_thread(); threads];
        self.rngs.init(threads);
    }

    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        let threads = self.deques.len();
        let rng = self.rngs.get(tid);
        let is_push = rng.gen_bool(0.5);
        let value = rng.gen_range(1..1_000u64);
        let victim = rng.gen_range(0..threads);
        let think = rng.gen_range(10..40);
        if is_push {
            self.pushed_sum = self.pushed_sum.wrapping_add(value);
            let d = self.deques[tid];
            Some(ArInvocation {
                ar: AR_PUSH,
                program: Arc::clone(&self.push),
                args: vec![(Reg(0), d.back.0), (Reg(1), d.slots.0), (Reg(2), value)],
                think_cycles: think,
                static_footprint: None,
            })
        } else {
            let d = self.deques[victim];
            Some(ArInvocation {
                ar: AR_STEAL,
                program: Arc::clone(&self.steal),
                args: vec![
                    (Reg(0), d.front.0),
                    (Reg(1), d.back.0),
                    (Reg(2), d.slots.0),
                    (Reg(3), self.accs[tid].0),
                ],
                think_cycles: think,
                static_footprint: None,
            })
        }
    }

    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let mut total = 0u64;
        for (t, d) in self.deques.iter().enumerate() {
            let front = mem.load_word(d.front);
            let back = mem.load_word(d.back);
            if front > back {
                return Err(format!("deque {t} indices crossed: {front} > {back}"));
            }
            for i in front..back {
                total = total.wrapping_add(mem.load_word(d.slots.add_words(i)));
            }
        }
        for &a in &self.accs {
            total = total.wrapping_add(mem.load_word(a));
        }
        if total == self.pushed_sum {
            Ok(())
        } else {
            Err(format!(
                "deque conservation broken: live+stolen {total} != pushed {}",
                self.pushed_sum
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_classification() {
        let m = Deque::new(Size::Tiny, 1).meta();
        assert_eq!(m.ars.len(), 2);
        assert_eq!(m.ars[0].mutability, Mutability::LikelyImmutable);
        assert_eq!(m.ars[1].mutability, Mutability::Mutable);
    }

    #[test]
    fn per_thread_deques_allocated() {
        let mut w = Deque::new(Size::Tiny, 1);
        let mut mem = Memory::new();
        w.setup(&mut mem, 3);
        assert_eq!(w.deques.len(), 3);
        assert!(w.validate(&mem).is_ok());
    }

    #[test]
    fn steal_targets_any_deque() {
        let mut w = Deque::new(Size::Tiny, 11);
        let mut mem = Memory::new();
        w.setup(&mut mem, 4);
        let mut fronts = std::collections::HashSet::new();
        for tid in 0..4 {
            while let Some(inv) = w.next_ar(tid, &mem) {
                if inv.ar == AR_STEAL {
                    fronts.insert(inv.args[0].1);
                }
            }
        }
        assert!(fronts.len() > 1, "steals should hit multiple victims");
    }
}
