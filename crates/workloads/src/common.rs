//! Shared workload plumbing: sizes, per-thread RNG streams.

use clear_mem::rng::Xoshiro256PlusPlus;

/// Input-size presets (the paper uses STAMP's "medium" inputs; simulation
/// here is software, so sizes are scaled to keep runs tractable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Size {
    /// Unit-test scale: seconds of wall-clock for the whole suite.
    Tiny,
    /// Criterion-bench scale.
    Small,
    /// Figure-harness scale (the default for EXPERIMENTS.md numbers).
    Medium,
}

impl Size {
    /// Operations per simulated thread.
    pub fn ops_per_thread(self) -> u32 {
        match self {
            Size::Tiny => 12,
            Size::Small => 60,
            Size::Medium => 200,
        }
    }

    /// Generic data-structure capacity scale factor.
    pub fn scale(self) -> usize {
        match self {
            Size::Tiny => 1,
            Size::Small => 4,
            Size::Medium => 8,
        }
    }
}

/// One independent RNG stream per simulated thread, so the operation mix of
/// thread *t* does not depend on how many threads run or how they
/// interleave.
#[derive(Debug)]
pub(crate) struct ThreadRngs {
    streams: Vec<Xoshiro256PlusPlus>,
    seed: u64,
}

impl ThreadRngs {
    pub(crate) fn new(seed: u64) -> Self {
        ThreadRngs {
            streams: Vec::new(),
            seed,
        }
    }

    pub(crate) fn init(&mut self, threads: usize) {
        self.streams = (0..threads)
            .map(|t| {
                Xoshiro256PlusPlus::seed_from_u64(
                    self.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t as u64 + 1)),
                )
            })
            .collect();
    }

    pub(crate) fn get(&mut self, tid: usize) -> &mut Xoshiro256PlusPlus {
        &mut self.streams[tid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_monotonic() {
        assert!(Size::Tiny.ops_per_thread() < Size::Small.ops_per_thread());
        assert!(Size::Small.ops_per_thread() < Size::Medium.ops_per_thread());
        assert!(Size::Tiny.scale() <= Size::Medium.scale());
    }

    #[test]
    fn thread_streams_are_independent_and_deterministic() {
        let mut a = ThreadRngs::new(7);
        a.init(2);
        let mut b = ThreadRngs::new(7);
        b.init(2);
        let x = a.get(0).gen_u64();
        let y = b.get(0).gen_u64();
        assert_eq!(x, y);
        let z = b.get(1).gen_u64();
        assert_ne!(x, z, "streams should differ across threads");
    }
}
