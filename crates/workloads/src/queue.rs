//! `queue` — a shared array FIFO \[20, 33\]: enqueue at the tail, dequeue
//! at the head. Slot addresses are computed from indices *loaded inside*
//! the AR, so both ARs carry indirections; dequeue additionally branches on
//! loaded data (empty check).

use crate::common::{Size, ThreadRngs};
use clear_isa::{
    ArId, ArInvocation, ArSpec, Cond, Mutability, Program, ProgramBuilder, Reg, Workload,
    WorkloadMeta,
};
use clear_mem::{Addr, Memory};
use std::sync::Arc;

const AR_ENQ: ArId = ArId(0);
const AR_DEQ: ArId = ArId(1);

/// Builds the enqueue program:
/// `slot[tail] = value; tail += 1` with `tail` loaded inside the AR.
///
/// Entry registers: `r0 = &tail`, `r1 = slots base`, `r2 = value`.
pub(crate) fn enqueue_program() -> Program {
    let mut p = ProgramBuilder::new();
    p.ld(Reg(3), Reg(0), 0) // tail
        .alui(clear_isa::AluOp::Shl, Reg(4), Reg(3), 3)
        .add(Reg(4), Reg(4), Reg(1)) // &slot[tail]
        .st(Reg(4), 0, Reg(2))
        .addi(Reg(3), Reg(3), 1)
        .st(Reg(0), 0, Reg(3))
        .xend();
    p.build()
}

/// Builds the dequeue program:
/// `if head != tail { v = slot[head]; head += 1; acc += v }`.
///
/// Entry registers: `r0 = &head`, `r1 = &tail`, `r2 = slots base`,
/// `r3 = &accumulator` (thread private).
pub(crate) fn dequeue_program() -> Program {
    let mut p = ProgramBuilder::new();
    let empty = p.label();
    p.ld(Reg(4), Reg(0), 0) // head
        .ld(Reg(5), Reg(1), 0) // tail
        .branch(Cond::Eq, Reg(4), Reg(5), empty)
        .alui(clear_isa::AluOp::Shl, Reg(6), Reg(4), 3)
        .add(Reg(6), Reg(6), Reg(2)) // &slot[head]
        .ld(Reg(7), Reg(6), 0) // value
        .addi(Reg(4), Reg(4), 1)
        .st(Reg(0), 0, Reg(4))
        .ld(Reg(8), Reg(3), 0)
        .add(Reg(8), Reg(8), Reg(7))
        .st(Reg(3), 0, Reg(8)) // acc += value
        .bind(empty)
        .xend();
    p.build()
}

/// The shared-queue benchmark with a conservation invariant: every value
/// ever enqueued is either still in the live region or accumulated by some
/// dequeuer.
#[derive(Debug)]
pub struct Queue {
    size: Size,
    rngs: ThreadRngs,
    head: Addr,
    tail: Addr,
    slots: Addr,
    accs: Vec<Addr>,
    remaining: Vec<u32>,
    enqueued_sum: u64,
    initial_elems: u64,
    enq: Arc<Program>,
    deq: Arc<Program>,
}

impl Queue {
    /// Creates the benchmark.
    pub fn new(size: Size, seed: u64) -> Self {
        Queue {
            size,
            rngs: ThreadRngs::new(seed),
            head: Addr::NULL,
            tail: Addr::NULL,
            slots: Addr::NULL,
            accs: vec![],
            remaining: vec![],
            enqueued_sum: 0,
            initial_elems: 8,
            enq: Arc::new(enqueue_program()),
            deq: Arc::new(dequeue_program()),
        }
    }
}

impl Workload for Queue {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "queue".into(),
            ars: vec![
                ArSpec {
                    id: AR_ENQ,
                    name: "enqueue".into(),
                    mutability: Mutability::LikelyImmutable,
                },
                ArSpec {
                    id: AR_DEQ,
                    name: "dequeue".into(),
                    mutability: Mutability::Mutable,
                },
            ],
        }
    }

    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        let capacity = self.initial_elems + threads as u64 * self.size.ops_per_thread() as u64 + 1;
        self.head = mem.alloc_words(1);
        self.tail = mem.alloc_words(1);
        self.slots = mem.alloc_words(capacity);
        self.accs = (0..threads).map(|_| mem.alloc_words(1)).collect();
        for i in 0..self.initial_elems {
            mem.store_word(self.slots.add_words(i), 1000 + i);
            self.enqueued_sum = self.enqueued_sum.wrapping_add(1000 + i);
        }
        mem.store_word(self.tail, self.initial_elems);
        self.remaining = vec![self.size.ops_per_thread(); threads];
        self.rngs.init(threads);
    }

    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        let rng = self.rngs.get(tid);
        let is_enq = rng.gen_bool(0.5);
        let value = rng.gen_range(1..1_000u64);
        let think = rng.gen_range(10..40);
        if is_enq {
            self.enqueued_sum = self.enqueued_sum.wrapping_add(value);
            Some(ArInvocation {
                ar: AR_ENQ,
                program: Arc::clone(&self.enq),
                args: vec![
                    (Reg(0), self.tail.0),
                    (Reg(1), self.slots.0),
                    (Reg(2), value),
                ],
                think_cycles: think,
                static_footprint: None,
            })
        } else {
            Some(ArInvocation {
                ar: AR_DEQ,
                program: Arc::clone(&self.deq),
                args: vec![
                    (Reg(0), self.head.0),
                    (Reg(1), self.tail.0),
                    (Reg(2), self.slots.0),
                    (Reg(3), self.accs[tid].0),
                ],
                think_cycles: think,
                static_footprint: None,
            })
        }
    }

    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let head = mem.load_word(self.head);
        let tail = mem.load_word(self.tail);
        if head > tail {
            return Err(format!("queue indices crossed: head {head} > tail {tail}"));
        }
        let live: u64 = (head..tail)
            .map(|i| mem.load_word(self.slots.add_words(i)))
            .fold(0u64, u64::wrapping_add);
        let consumed: u64 = self
            .accs
            .iter()
            .map(|&a| mem.load_word(a))
            .fold(0u64, u64::wrapping_add);
        let got = live.wrapping_add(consumed);
        if got == self.enqueued_sum {
            Ok(())
        } else {
            Err(format!(
                "queue conservation broken: live+consumed {got} != enqueued {}",
                self.enqueued_sum
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_classification() {
        let m = Queue::new(Size::Tiny, 1).meta();
        assert_eq!(m.ars[0].mutability, Mutability::LikelyImmutable);
        assert_eq!(m.ars[1].mutability, Mutability::Mutable);
    }

    #[test]
    fn initial_state_validates() {
        let mut w = Queue::new(Size::Tiny, 1);
        let mut mem = Memory::new();
        w.setup(&mut mem, 2);
        assert!(w.validate(&mem).is_ok());
        assert_eq!(mem.load_word(w.head), 0);
        assert_eq!(mem.load_word(w.tail), w.initial_elems);
    }

    #[test]
    fn manual_enqueue_dequeue_round_trip() {
        let mut w = Queue::new(Size::Tiny, 1);
        let mut mem = Memory::new();
        w.setup(&mut mem, 1);
        // Dequeue one element by hand into acc 0.
        let head = mem.load_word(w.head);
        let v = mem.load_word(w.slots.add_words(head));
        mem.store_word(w.head, head + 1);
        mem.store_word(w.accs[0], v);
        assert!(w.validate(&mem).is_ok());
        // Losing the value breaks conservation.
        mem.store_word(w.accs[0], 0);
        assert!(w.validate(&mem).is_err());
    }

    #[test]
    fn enqueue_tracking_updates_expected_sum() {
        let mut w = Queue::new(Size::Tiny, 5);
        let mut mem = Memory::new();
        w.setup(&mut mem, 1);
        let before = w.enqueued_sum;
        let mut saw_enq = false;
        while let Some(inv) = w.next_ar(0, &mem) {
            if inv.ar == AR_ENQ {
                saw_enq = true;
            }
        }
        assert!(saw_enq);
        assert!(w.enqueued_sum > before);
    }
}
