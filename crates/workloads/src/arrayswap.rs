//! `arrayswap` — the paper's Listing 1: swap two array elements whose
//! addresses are computed outside the AR. Both ARs are **immutable**.

use crate::common::{Size, ThreadRngs};
use clear_isa::{
    ArId, ArInvocation, ArSpec, Mutability, Program, ProgramBuilder, Reg, Workload, WorkloadMeta,
};
use clear_mem::{Addr, Memory, LINE_BYTES, WORD_BYTES};
use std::sync::Arc;

const AR_SWAP: ArId = ArId(0);
const AR_SUM: ArId = ArId(1);

/// The `arrayswap` microbenchmark \[15\].
///
/// An array of line-spaced `u64` slots; each operation picks two random
/// slots outside the AR and either swaps them or reads both. Initialised
/// with `slot[i] = i`, so the multiset of values — and hence the sum — is
/// conserved by every committed swap.
#[derive(Debug)]
pub struct ArraySwap {
    size: Size,
    rngs: ThreadRngs,
    base: Addr,
    slots: usize,
    remaining: Vec<u32>,
    swap: Arc<Program>,
    sum: Arc<Program>,
}

impl ArraySwap {
    /// Creates the benchmark.
    pub fn new(size: Size, seed: u64) -> Self {
        // atomic { ea = *a; eb = *b; *a = eb; *b = ea; }
        let mut p = ProgramBuilder::new();
        p.ld(Reg(2), Reg(0), 0)
            .ld(Reg(3), Reg(1), 0)
            .st(Reg(0), 0, Reg(3))
            .st(Reg(1), 0, Reg(2))
            .xend();
        let swap = Arc::new(p.build());

        // atomic { s = *a + *b; } (result discarded)
        let mut p = ProgramBuilder::new();
        p.ld(Reg(2), Reg(0), 0)
            .ld(Reg(3), Reg(1), 0)
            .add(Reg(4), Reg(2), Reg(3))
            .xend();
        let sum = Arc::new(p.build());

        ArraySwap {
            size,
            rngs: ThreadRngs::new(seed),
            base: Addr::NULL,
            slots: 16 * size.scale(),
            remaining: vec![],
            swap,
            sum,
        }
    }

    fn slot(&self, i: usize) -> Addr {
        Addr(self.base.0 + (i as u64) * LINE_BYTES)
    }

    /// Sum of all slots (for the conservation invariant).
    fn total(&self, mem: &Memory) -> u64 {
        (0..self.slots)
            .map(|i| mem.load_word(self.slot(i)))
            .fold(0u64, u64::wrapping_add)
    }

    fn expected_total(&self) -> u64 {
        (0..self.slots as u64).fold(0u64, u64::wrapping_add)
    }
}

impl Workload for ArraySwap {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "arrayswap".into(),
            ars: vec![
                ArSpec {
                    id: AR_SWAP,
                    name: "swap".into(),
                    mutability: Mutability::Immutable,
                },
                ArSpec {
                    id: AR_SUM,
                    name: "sum".into(),
                    mutability: Mutability::Immutable,
                },
            ],
        }
    }

    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.base = mem.alloc_words(self.slots as u64 * (LINE_BYTES / WORD_BYTES));
        for i in 0..self.slots {
            mem.store_word(self.slot(i), i as u64);
        }
        self.remaining = vec![self.size.ops_per_thread(); threads];
        self.rngs.init(threads);
    }

    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        let slots = self.slots;
        let rng = self.rngs.get(tid);
        let a = rng.gen_range(0..slots);
        let mut b = rng.gen_range(0..slots);
        if b == a {
            b = (b + 1) % slots;
        }
        let is_swap = rng.gen_ratio(3, 4);
        let think = rng.gen_range(10..40);
        let (ar, program) = if is_swap {
            (AR_SWAP, Arc::clone(&self.swap))
        } else {
            (AR_SUM, Arc::clone(&self.sum))
        };
        Some(ArInvocation {
            ar,
            program,
            args: vec![(Reg(0), self.slot(a).0), (Reg(1), self.slot(b).0)],
            think_cycles: think,
            static_footprint: Some(vec![self.slot(a).line(), self.slot(b).line()]),
        })
    }

    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let got = self.total(mem);
        let want = self.expected_total();
        if got == want {
            Ok(())
        } else {
            Err(format!(
                "arrayswap sum {got} != initial sum {want}: swaps were torn"
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_immutable_ars() {
        let w = ArraySwap::new(Size::Tiny, 1);
        let m = w.meta();
        assert_eq!(m.ars.len(), 2);
        assert!(m.ars.iter().all(|a| a.mutability == Mutability::Immutable));
    }

    #[test]
    fn setup_initialises_identity_values() {
        let mut w = ArraySwap::new(Size::Tiny, 1);
        let mut mem = Memory::new();
        w.setup(&mut mem, 2);
        assert_eq!(mem.load_word(w.slot(0)), 0);
        assert_eq!(mem.load_word(w.slot(5)), 5);
        assert!(w.validate(&mem).is_ok());
    }

    #[test]
    fn next_ar_exhausts_after_ops() {
        let mut w = ArraySwap::new(Size::Tiny, 3);
        let mut mem = Memory::new();
        w.setup(&mut mem, 1);
        let mut n = 0;
        while w.next_ar(0, &mem).is_some() {
            n += 1;
        }
        assert_eq!(n, Size::Tiny.ops_per_thread());
    }

    #[test]
    fn args_are_distinct_line_aligned_slots() {
        let mut w = ArraySwap::new(Size::Tiny, 3);
        let mut mem = Memory::new();
        w.setup(&mut mem, 1);
        let inv = w.next_ar(0, &mem).unwrap();
        let a = Addr(inv.args[0].1);
        let b = Addr(inv.args[1].1);
        assert_ne!(a.line(), b.line());
        assert_eq!(a.offset_in_line(), 0);
    }

    #[test]
    fn validate_detects_torn_swap() {
        let mut w = ArraySwap::new(Size::Tiny, 1);
        let mut mem = Memory::new();
        w.setup(&mut mem, 1);
        // Simulate a lost update: duplicate a value.
        let v = mem.load_word(w.slot(1));
        mem.store_word(w.slot(0), v);
        assert!(w.validate(&mem).is_err());
    }
}
