//! `bst` — an unbalanced binary search tree \[20, 33\]. All three ARs
//! (insert, contains, update) traverse child pointers loaded inside the
//! AR — **mutable** per Table 1, though while the tree is small S-CL often
//! still succeeds (the paper remarks on exactly this for bst, Fig. 12).

use crate::common::{Size, ThreadRngs};
use clear_isa::{
    ArId, ArInvocation, ArSpec, Cond, Mutability, Program, ProgramBuilder, Reg, Workload,
    WorkloadMeta,
};
use clear_mem::{Addr, Memory};
use std::sync::Arc;

const AR_INSERT: ArId = ArId(0);
const AR_CONTAINS: ArId = ArId(1);
const AR_UPDATE: ArId = ArId(2);

/// Node layout: `[key, left, right]` in the first line; the mutable value
/// lives in the node's *second* cacheline so value updates do not
/// false-share with the traversal pointers (as in padded C implementations).
const KEY_OFF: i64 = 0;
const LEFT_OFF: i64 = 8;
const RIGHT_OFF: i64 = 16;
const VAL_OFF: i64 = 64;

/// Insert program. Entry: `r0 = &root slot`, `r1 = node`, `r2 = key`,
/// `r5 = 0`. Keys are unique, so the equal case never occurs.
fn insert_program() -> Program {
    let mut p = ProgramBuilder::new();
    let lp = p.label();
    let left = p.label();
    let set_root = p.label();
    let set_left = p.label();
    let set_right = p.label();
    let end = p.label();
    p.st(Reg(1), KEY_OFF, Reg(2))
        .st(Reg(1), VAL_OFF, Reg(5))
        .st(Reg(1), LEFT_OFF, Reg(5))
        .st(Reg(1), RIGHT_OFF, Reg(5))
        .ld(Reg(4), Reg(0), 0) // cur = root
        .branch(Cond::Eq, Reg(4), Reg(5), set_root)
        .bind(lp)
        .ld(Reg(6), Reg(4), KEY_OFF)
        .branch(Cond::Lt, Reg(2), Reg(6), left)
        .ld(Reg(7), Reg(4), RIGHT_OFF)
        .branch(Cond::Eq, Reg(7), Reg(5), set_right)
        .mv(Reg(4), Reg(7))
        .jmp(lp)
        .bind(left)
        .ld(Reg(7), Reg(4), LEFT_OFF)
        .branch(Cond::Eq, Reg(7), Reg(5), set_left)
        .mv(Reg(4), Reg(7))
        .jmp(lp)
        .bind(set_root)
        .st(Reg(0), 0, Reg(1))
        .jmp(end)
        .bind(set_left)
        .st(Reg(4), LEFT_OFF, Reg(1))
        .jmp(end)
        .bind(set_right)
        .st(Reg(4), RIGHT_OFF, Reg(1))
        .bind(end)
        .xend();
    p.build()
}

/// Traversal program shared by contains/update. Entry: `r0 = &root slot`,
/// `r1 = key`, `r2 = &acc` (contains) , `r5 = 0`. `bump_value` selects
/// whether a hit increments the node's value (update) or the accumulator
/// (contains).
fn search_program(bump_value: bool) -> Program {
    let mut p = ProgramBuilder::new();
    let lp = p.label();
    let left = p.label();
    let found = p.label();
    let done = p.label();
    p.ld(Reg(4), Reg(0), 0)
        .bind(lp)
        .branch(Cond::Eq, Reg(4), Reg(5), done)
        .ld(Reg(6), Reg(4), KEY_OFF)
        .branch(Cond::Eq, Reg(6), Reg(1), found)
        .branch(Cond::Lt, Reg(1), Reg(6), left)
        .ld(Reg(4), Reg(4), RIGHT_OFF)
        .jmp(lp)
        .bind(left)
        .ld(Reg(4), Reg(4), LEFT_OFF)
        .jmp(lp)
        .bind(found);
    if bump_value {
        p.ld(Reg(7), Reg(4), VAL_OFF)
            .addi(Reg(7), Reg(7), 1)
            .st(Reg(4), VAL_OFF, Reg(7));
    } else {
        p.ld(Reg(7), Reg(2), 0)
            .addi(Reg(7), Reg(7), 1)
            .st(Reg(2), 0, Reg(7));
    }
    p.bind(done).xend();
    p.build()
}

/// The BST benchmark with full structural validation (BST property, node
/// count, hit counters).
#[derive(Debug)]
pub struct Bst {
    size: Size,
    rngs: ThreadRngs,
    root: Addr,
    pool: Vec<Addr>,
    next_node: usize,
    accs: Vec<Addr>,
    remaining: Vec<u32>,
    inserted_keys: Vec<Vec<u64>>,
    lookups: u64,
    updates: u64,
    insert: Arc<Program>,
    contains: Arc<Program>,
    update: Arc<Program>,
}

impl Bst {
    /// Creates the benchmark.
    pub fn new(size: Size, seed: u64) -> Self {
        Bst {
            size,
            rngs: ThreadRngs::new(seed),
            root: Addr::NULL,
            pool: vec![],
            next_node: 0,
            accs: vec![],
            remaining: vec![],
            inserted_keys: vec![],
            lookups: 0,
            updates: 0,
            insert: Arc::new(insert_program()),
            contains: Arc::new(search_program(false)),
            update: Arc::new(search_program(true)),
        }
    }

    /// Unique keys spread pseudo-randomly: mixes tid and index.
    fn key_for(&self, tid: usize, n: usize) -> u64 {
        let x = (tid as u64) << 32 | n as u64;
        // Fibonacci hash keeps the tree reasonably balanced.
        x.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 16
    }

    fn check_subtree(
        &self,
        mem: &Memory,
        node: u64,
        lo: u64,
        hi: u64,
        count: &mut usize,
        values: &mut u64,
    ) -> Result<(), String> {
        if node == 0 {
            return Ok(());
        }
        *count += 1;
        if *count > self.pool.len() + 1 {
            return Err("cycle or overcount in tree".into());
        }
        let key = mem.load_word(Addr(node));
        if key < lo || key >= hi {
            return Err(format!("BST property violated at key {key}"));
        }
        *values += mem.load_word(Addr(node + VAL_OFF as u64));
        self.check_subtree(
            mem,
            mem.load_word(Addr(node + LEFT_OFF as u64)),
            lo,
            key,
            count,
            values,
        )?;
        self.check_subtree(
            mem,
            mem.load_word(Addr(node + RIGHT_OFF as u64)),
            key + 1,
            hi,
            count,
            values,
        )
    }
}

impl Workload for Bst {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "bst".into(),
            ars: vec![
                ArSpec {
                    id: AR_INSERT,
                    name: "insert".into(),
                    mutability: Mutability::Mutable,
                },
                ArSpec {
                    id: AR_CONTAINS,
                    name: "contains".into(),
                    mutability: Mutability::Mutable,
                },
                ArSpec {
                    id: AR_UPDATE,
                    name: "update".into(),
                    mutability: Mutability::Mutable,
                },
            ],
        }
    }

    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.root = mem.alloc_words(1);
        let max_nodes = threads * self.size.ops_per_thread() as usize;
        self.pool = (0..max_nodes).map(|_| mem.alloc_words(16)).collect();
        self.accs = (0..threads).map(|_| mem.alloc_words(1)).collect();
        self.remaining = vec![self.size.ops_per_thread(); threads];
        self.inserted_keys = vec![vec![]; threads];
        self.rngs.init(threads);
    }

    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        let have_keys = !self.inserted_keys[tid].is_empty();
        let rng = self.rngs.get(tid);
        let dice = rng.gen_f64();
        let think = rng.gen_range(5..20);
        if dice < 0.2 || !have_keys {
            let n = self.inserted_keys[tid].len();
            let key = self.key_for(tid, n);
            let node = self.pool[self.next_node];
            self.next_node += 1;
            self.inserted_keys[tid].push(key);
            Some(ArInvocation {
                ar: AR_INSERT,
                program: Arc::clone(&self.insert),
                args: vec![
                    (Reg(0), self.root.0),
                    (Reg(1), node.0),
                    (Reg(2), key),
                    (Reg(5), 0),
                ],
                think_cycles: think,
                static_footprint: None,
            })
        } else {
            let idx = rng.gen_range(0..self.inserted_keys[tid].len());
            let key = self.inserted_keys[tid][idx];
            let (ar, program) = if dice < 0.5 {
                self.lookups += 1;
                (AR_CONTAINS, Arc::clone(&self.contains))
            } else {
                self.updates += 1;
                (AR_UPDATE, Arc::clone(&self.update))
            };
            Some(ArInvocation {
                ar,
                program,
                args: vec![
                    (Reg(0), self.root.0),
                    (Reg(1), key),
                    (Reg(2), self.accs[tid].0),
                    (Reg(5), 0),
                ],
                think_cycles: think,
                static_footprint: None,
            })
        }
    }

    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let mut count = 0usize;
        let mut values = 0u64;
        self.check_subtree(
            mem,
            mem.load_word(self.root),
            0,
            u64::MAX,
            &mut count,
            &mut values,
        )?;
        let want: usize = self.inserted_keys.iter().map(Vec::len).sum();
        if count != want {
            return Err(format!("{count} nodes in tree, expected {want}"));
        }
        if values != self.updates {
            return Err(format!(
                "Σvalues {values} != committed updates {}",
                self.updates
            ));
        }
        let acc: u64 = self.accs.iter().map(|&a| mem.load_word(a)).sum();
        if acc != self.lookups {
            return Err(format!("Σaccs {acc} != committed lookups {}", self.lookups));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_mutable_ars() {
        let m = Bst::new(Size::Tiny, 1).meta();
        assert_eq!(m.ars.len(), 3);
        assert!(m.ars.iter().all(|a| a.mutability == Mutability::Mutable));
    }

    #[test]
    fn keys_are_unique_across_threads() {
        let w = Bst::new(Size::Tiny, 1);
        let mut seen = std::collections::HashSet::new();
        for t in 0..4 {
            for n in 0..100 {
                assert!(seen.insert(w.key_for(t, n)));
            }
        }
    }

    #[test]
    fn manual_insert_validates() {
        let mut w = Bst::new(Size::Tiny, 1);
        let mut mem = Memory::new();
        w.setup(&mut mem, 1);
        let inv = w.next_ar(0, &mem).unwrap();
        assert_eq!(inv.ar, AR_INSERT);
        let (root, node, key) = (inv.args[0].1, inv.args[1].1, inv.args[2].1);
        mem.store_word(Addr(node), key);
        mem.store_word(Addr(root), node);
        assert!(w.validate(&mem).is_ok());
    }

    #[test]
    fn validate_catches_bst_violation() {
        let mut w = Bst::new(Size::Tiny, 1);
        let mut mem = Memory::new();
        w.setup(&mut mem, 1);
        // Build a two-node tree violating the order: right child smaller.
        let a = w.pool[0];
        let b = w.pool[1];
        mem.store_word(a, 100);
        mem.store_word(Addr(a.0 + RIGHT_OFF as u64), b.0);
        mem.store_word(b, 50); // right child must be > 100
        mem.store_word(w.root, a.0);
        w.inserted_keys[0] = vec![100, 50];
        assert!(w.validate(&mem).is_err());
    }
}
