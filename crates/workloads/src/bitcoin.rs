//! `bitcoin` — the paper's Listing 2: transfer between two wallets reached
//! through an indirection (`users` pointer loaded inside the AR). One
//! **likely-immutable** AR: the indirection value never changes, but the
//! hardware cannot prove it.

use crate::common::{Size, ThreadRngs};
use clear_isa::{
    ArId, ArInvocation, ArSpec, Mutability, Program, ProgramBuilder, Reg, Workload, WorkloadMeta,
};
use clear_mem::{Addr, Memory, LINE_BYTES, WORD_BYTES};
use std::sync::Arc;

const AR_TRANSFER: ArId = ArId(0);

/// Emulates wallet-to-wallet transfers over the bitcoin network dataset
/// \[23\]: `users[from].bitcoins -= amount; users[to].bitcoins += amount;`.
///
/// The wallet table base pointer is stored in memory and loaded *inside*
/// the AR, so both wallet addresses carry the indirection bit even though
/// the pointer is never modified — the canonical likely-immutable AR.
#[derive(Debug)]
pub struct Bitcoin {
    size: Size,
    rngs: ThreadRngs,
    /// Memory slot holding the wallet-table base pointer.
    users_slot: Addr,
    wallets: usize,
    remaining: Vec<u32>,
    program: Arc<Program>,
    initial_balance: u64,
}

impl Bitcoin {
    /// Creates the benchmark.
    pub fn new(size: Size, seed: u64) -> Self {
        // r0 = &users_slot, r1 = from*64, r2 = to*64, r3 = amount
        let mut p = ProgramBuilder::new();
        p.ld(Reg(4), Reg(0), 0) // users base (indirection)
            .add(Reg(5), Reg(4), Reg(1)) // &users[from]
            .add(Reg(6), Reg(4), Reg(2)) // &users[to]
            .ld(Reg(7), Reg(5), 0)
            .alu(clear_isa::AluOp::Sub, Reg(7), Reg(7), Reg(3))
            .st(Reg(5), 0, Reg(7))
            .ld(Reg(8), Reg(6), 0)
            .add(Reg(8), Reg(8), Reg(3))
            .st(Reg(6), 0, Reg(8))
            .xend();
        Bitcoin {
            size,
            rngs: ThreadRngs::new(seed),
            users_slot: Addr::NULL,
            wallets: 24 * size.scale(),
            remaining: vec![],
            program: Arc::new(p.build()),
            initial_balance: 1_000_000,
        }
    }

    fn wallet(&self, mem: &Memory, i: usize) -> Addr {
        let base = mem.load_word(self.users_slot);
        Addr(base + (i as u64) * LINE_BYTES)
    }
}

impl Workload for Bitcoin {
    fn meta(&self) -> WorkloadMeta {
        WorkloadMeta {
            name: "bitcoin".into(),
            ars: vec![ArSpec {
                id: AR_TRANSFER,
                name: "transfer".into(),
                mutability: Mutability::LikelyImmutable,
            }],
        }
    }

    fn setup(&mut self, mem: &mut Memory, threads: usize) {
        self.users_slot = mem.alloc_words(1);
        let table = mem.alloc_words(self.wallets as u64 * (LINE_BYTES / WORD_BYTES));
        mem.store_word(self.users_slot, table.0);
        for i in 0..self.wallets {
            mem.store_word(
                Addr(table.0 + (i as u64) * LINE_BYTES),
                self.initial_balance,
            );
        }
        self.remaining = vec![self.size.ops_per_thread(); threads];
        self.rngs.init(threads);
    }

    fn next_ar(&mut self, tid: usize, _mem: &Memory) -> Option<ArInvocation> {
        if self.remaining[tid] == 0 {
            return None;
        }
        self.remaining[tid] -= 1;
        let wallets = self.wallets;
        let rng = self.rngs.get(tid);
        let from = rng.gen_range(0..wallets);
        let mut to = rng.gen_range(0..wallets);
        if to == from {
            to = (to + 1) % wallets;
        }
        let amount = rng.gen_range(1..100u64);
        let think = rng.gen_range(15..50);
        Some(ArInvocation {
            ar: AR_TRANSFER,
            program: Arc::clone(&self.program),
            args: vec![
                (Reg(0), self.users_slot.0),
                (Reg(1), from as u64 * LINE_BYTES),
                (Reg(2), to as u64 * LINE_BYTES),
                (Reg(3), amount),
            ],
            think_cycles: think,
            static_footprint: None,
        })
    }

    fn validate(&self, mem: &Memory) -> Result<(), String> {
        let total: u64 = (0..self.wallets)
            .map(|i| mem.load_word(self.wallet(mem, i)))
            .fold(0u64, u64::wrapping_add);
        let want = self.initial_balance.wrapping_mul(self.wallets as u64);
        if total == want {
            Ok(())
        } else {
            Err(format!("bitcoins not conserved: {total} != {want}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_likely_immutable_ar() {
        let m = Bitcoin::new(Size::Tiny, 1).meta();
        assert_eq!(m.ars.len(), 1);
        assert_eq!(m.ars[0].mutability, Mutability::LikelyImmutable);
    }

    #[test]
    fn transfer_conserves_when_applied_atomically() {
        let mut w = Bitcoin::new(Size::Tiny, 2);
        let mut mem = Memory::new();
        w.setup(&mut mem, 1);
        assert!(w.validate(&mem).is_ok());
        // Apply a transfer by hand.
        let a = w.wallet(&mem, 0);
        let b = w.wallet(&mem, 1);
        mem.store_word(a, mem.load_word(a) - 50);
        mem.store_word(b, mem.load_word(b) + 50);
        assert!(w.validate(&mem).is_ok());
        // A half-applied transfer is caught.
        mem.store_word(a, mem.load_word(a) - 10);
        assert!(w.validate(&mem).is_err());
    }

    #[test]
    fn from_and_to_differ() {
        let mut w = Bitcoin::new(Size::Tiny, 9);
        let mut mem = Memory::new();
        w.setup(&mut mem, 1);
        for _ in 0..Size::Tiny.ops_per_thread() {
            let inv = w.next_ar(0, &mem).unwrap();
            assert_ne!(inv.args[1].1, inv.args[2].1);
        }
    }
}
