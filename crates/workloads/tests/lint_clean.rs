//! Every registered workload's AR programs must pass the static lint
//! pass cleanly, receive a verdict, and analyze deterministically.
//!
//! This is the "workload generators are well-formed regions" gate: no
//! program may run off its end, contain dead code, read residue
//! registers, or address unmapped/misaligned memory from its sampled
//! entry arguments.

use clear_analysis::{analyze_workload, StaticBudget, WorkloadReport};
use clear_workloads::{by_name, Size, BENCHMARK_NAMES};

// Small size with 8 threads gives each workload hundreds of invocation
// pulls, enough for even the rarest weighted AR (bayes' weight-1 learn
// steps) to appear; the run is deterministic for the fixed seed.
const THREADS: usize = 8;
const SEED: u64 = 5;

fn analyze_all() -> Vec<WorkloadReport> {
    BENCHMARK_NAMES
        .iter()
        .map(|name| {
            let mut w = by_name(name, Size::Small, SEED).expect("registry name");
            analyze_workload(&mut *w, THREADS, &StaticBudget::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        })
        .collect()
}

#[test]
fn every_workload_ar_is_lint_clean() {
    for report in analyze_all() {
        for ar in &report.ars {
            assert!(
                ar.analysis.lints.is_empty(),
                "{} / {} ({}): lints found:\n{}",
                report.name,
                ar.spec.name,
                ar.spec.id,
                ar.analysis
                    .lints
                    .iter()
                    .map(|l| format!("  {l}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }
}

#[test]
fn every_ar_gets_a_verdict_and_bounded_blocks() {
    let reports = analyze_all();
    assert_eq!(reports.len(), 19);
    for report in &reports {
        assert!(!report.ars.is_empty(), "{}: no ARs", report.name);
        for ar in &report.ars {
            // Every verdict is one of the four classes (non-exhaustive
            // matches would not compile; this documents the invariant
            // that analysis never panics and always classifies).
            assert!(
                ar.analysis.reachable_blocks >= 1,
                "{} / {}: no reachable blocks",
                report.name,
                ar.spec.name
            );
            assert!(
                ar.analysis.instructions > 0,
                "{} / {}: empty program",
                report.name,
                ar.spec.name
            );
        }
    }
}

#[test]
fn declared_static_footprints_match_analysis() {
    // Workloads that declare an a-priori footprint (immutable ARs used by
    // the a-priori locking comparator) must declare exactly the lines the
    // analyzer derives from the same entry arguments.
    let mut checked = 0;
    for report in analyze_all() {
        for ar in &report.ars {
            if let Some(ok) = ar.declared_footprint_matches {
                assert!(
                    ok,
                    "{} / {}: declared static footprint disagrees with analysis",
                    report.name, ar.spec.name
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "no declared footprints were checked");
}

#[test]
fn verdicts_agree_with_declared_classes_except_known_cases() {
    // The analyzer's verdict maps onto Table 1's class for most ARs. The
    // known exceptions are pinned here:
    //
    // * deque/push-back, queue/enqueue, stack/push are *declared*
    //   likely-immutable (the paper reasons about concurrent writers),
    //   but the region itself RMWs the tail/top slot it loads its base
    //   pointer from, so the analyzer conservatively calls them indirect;
    // * NonConvertible is a size statement with no Table 1 counterpart
    //   (`expected_mutability()` is `None`), so those ARs are skipped.
    let known_disagreements = [
        ("deque", "push-back"),
        ("queue", "enqueue"),
        ("stack", "push"),
    ];
    let mut seen: Vec<(String, String)> = Vec::new();
    for report in analyze_all() {
        for ar in &report.ars {
            let Some(expected) = ar.analysis.verdict.expected_mutability() else {
                continue;
            };
            if expected != ar.spec.mutability {
                seen.push((report.name.clone(), ar.spec.name.clone()));
            }
        }
    }
    let seen_refs: Vec<(&str, &str)> = seen.iter().map(|(w, a)| (w.as_str(), a.as_str())).collect();
    assert_eq!(seen_refs, known_disagreements);
}

#[test]
fn analysis_is_deterministic() {
    let a = analyze_all();
    let b = analyze_all();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(format!("{x:?}"), format!("{y:?}"), "{} drifted", x.name);
    }
}

#[test]
fn print_verdicts_for_inspection() {
    // Not an assertion test: documents the current classification per AR
    // (visible with --nocapture). The pinned agreement matrix lives in
    // the harness's static-agreement golden.
    for report in analyze_all() {
        for ar in &report.ars {
            println!(
                "{:12} {:16} declared={:17} verdict={:17} lines={:?} depth={}",
                report.name,
                ar.spec.name,
                ar.spec.mutability.to_string(),
                ar.analysis.verdict.to_string(),
                ar.analysis.footprint.lines,
                ar.analysis.max_depth,
            );
        }
    }
}
