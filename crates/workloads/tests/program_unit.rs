//! Program-level tests: execute each benchmark's ARs one at a time on a
//! bare VM (no machine, no concurrency) and check the exact memory
//! mutations. Isolates mini-ISA program bugs from machine/protocol bugs.

use clear_isa::{ArId, ArInvocation, Effect, Vm};
use clear_mem::{Addr, Memory};
use clear_workloads::{by_name, Size};

/// Executes one AR invocation to completion against `mem`.
fn execute(inv: &ArInvocation, mem: &mut Memory) {
    let mut vm = Vm::new(inv.program.clone());
    for &(r, v) in &inv.args {
        vm.set_reg(r, v);
    }
    let mut steps = 0;
    loop {
        steps += 1;
        assert!(steps < 1_000_000, "AR did not terminate");
        match vm.step() {
            Effect::Load { addr, .. } => {
                let v = mem.load_word(addr);
                vm.finish_load(v);
            }
            Effect::Store { addr, value, .. } => mem.store_word(addr, value),
            Effect::Commit => break,
            Effect::Abort { code } => panic!("unexpected XAbort({code})"),
            _ => {}
        }
    }
}

/// Runs a whole single-threaded session of a benchmark directly on the VM
/// and then validates the workload invariant.
fn run_workload_serially(name: &str, seed: u64) {
    let mut w = by_name(name, Size::Tiny, seed).unwrap();
    let mut mem = Memory::new();
    w.setup(&mut mem, 2);
    for tid in 0..2 {
        while let Some(inv) = w.next_ar(tid, &mem) {
            execute(&inv, &mut mem);
        }
    }
    w.validate(&mem)
        .unwrap_or_else(|e| panic!("{name}: serial VM execution broke the invariant: {e}"));
}

#[test]
fn every_benchmark_survives_serial_vm_execution() {
    for name in clear_workloads::BENCHMARK_NAMES {
        for seed in [1, 9] {
            run_workload_serially(name, seed);
        }
    }
}

#[test]
fn queue_enqueue_then_dequeue_moves_one_value() {
    let mut w = by_name("queue", Size::Tiny, 4).unwrap();
    let mut mem = Memory::new();
    w.setup(&mut mem, 1);

    // Find one enqueue and one dequeue invocation.
    let mut enq = None;
    let mut deq = None;
    while enq.is_none() || deq.is_none() {
        let inv = w.next_ar(0, &mem).expect("enough ops");
        match inv.ar {
            ArId(0) if enq.is_none() => enq = Some(inv),
            ArId(1) if deq.is_none() => deq = Some(inv),
            _ => {}
        }
    }
    let enq = enq.unwrap();
    let deq = deq.unwrap();

    let tail_slot = Addr(enq.args[0].1);
    let value = enq.args[2].1;
    let tail_before = mem.load_word(tail_slot);
    execute(&enq, &mut mem);
    assert_eq!(mem.load_word(tail_slot), tail_before + 1, "tail advanced");
    let slots = Addr(enq.args[1].1);
    assert_eq!(
        mem.load_word(slots.add_words(tail_before)),
        value,
        "value written"
    );

    let head_slot = Addr(deq.args[0].1);
    let acc = Addr(deq.args[3].1);
    let head_before = mem.load_word(head_slot);
    let front_value = mem.load_word(slots.add_words(head_before));
    let acc_before = mem.load_word(acc);
    execute(&deq, &mut mem);
    assert_eq!(mem.load_word(head_slot), head_before + 1, "head advanced");
    assert_eq!(
        mem.load_word(acc),
        acc_before + front_value,
        "value consumed"
    );
}

#[test]
fn dequeue_on_empty_queue_is_a_noop() {
    let mut w = by_name("queue", Size::Tiny, 4).unwrap();
    let mut mem = Memory::new();
    w.setup(&mut mem, 1);
    // Drain: set head == tail artificially.
    let inv = loop {
        let inv = w.next_ar(0, &mem).expect("ops");
        if inv.ar == ArId(1) {
            break inv;
        }
    };
    let head_slot = Addr(inv.args[0].1);
    let tail_slot = Addr(inv.args[1].1);
    let tail = mem.load_word(tail_slot);
    mem.store_word(head_slot, tail); // empty
    execute(&inv, &mut mem);
    assert_eq!(
        mem.load_word(head_slot),
        tail,
        "empty dequeue must not move head"
    );
}

#[test]
fn stack_pop_reverses_push() {
    let mut w = by_name("stack", Size::Tiny, 6).unwrap();
    let mut mem = Memory::new();
    w.setup(&mut mem, 1);
    let (mut push, mut pop) = (None, None);
    while push.is_none() || pop.is_none() {
        let inv = w.next_ar(0, &mem).expect("ops");
        match inv.ar {
            ArId(0) if push.is_none() => push = Some(inv),
            ArId(1) if pop.is_none() => pop = Some(inv),
            _ => {}
        }
    }
    let push = push.unwrap();
    let pop = pop.unwrap();
    let top_slot = Addr(push.args[0].1);
    let value = push.args[2].1;
    let top_before = mem.load_word(top_slot);
    execute(&push, &mut mem);
    assert_eq!(mem.load_word(top_slot), top_before + 1);

    let acc = Addr(pop.args[2].1);
    let acc_before = mem.load_word(acc);
    execute(&pop, &mut mem);
    assert_eq!(mem.load_word(top_slot), top_before, "pop undoes push");
    assert_eq!(
        mem.load_word(acc),
        acc_before + value,
        "popped the pushed value"
    );
}

#[test]
fn bitcoin_transfer_moves_exactly_amount() {
    let mut w = by_name("bitcoin", Size::Tiny, 8).unwrap();
    let mut mem = Memory::new();
    w.setup(&mut mem, 1);
    let inv = w.next_ar(0, &mem).unwrap();
    let users_slot = Addr(inv.args[0].1);
    let base = mem.load_word(users_slot);
    let from = Addr(base + inv.args[1].1);
    let to = Addr(base + inv.args[2].1);
    let amount = inv.args[3].1;
    let (f0, t0) = (mem.load_word(from), mem.load_word(to));
    execute(&inv, &mut mem);
    assert_eq!(mem.load_word(from), f0 - amount);
    assert_eq!(mem.load_word(to), t0 + amount);
}

#[test]
fn mwobject_update_increments_all_four_words() {
    let mut w = by_name("mwobject", Size::Tiny, 2).unwrap();
    let mut mem = Memory::new();
    w.setup(&mut mem, 1);
    let inv = w.next_ar(0, &mem).unwrap();
    let obj = Addr(inv.args[0].1);
    execute(&inv, &mut mem);
    for i in 0..4 {
        assert_eq!(mem.load_word(obj.add_words(i)), 1, "word {i}");
    }
}

#[test]
fn sorted_list_insert_places_in_order() {
    let mut w = by_name("sorted-list", Size::Tiny, 3).unwrap();
    let mut mem = Memory::new();
    w.setup(&mut mem, 1);
    // Execute every op; after each insert the list must stay sorted.
    while let Some(inv) = w.next_ar(0, &mem) {
        execute(&inv, &mut mem);
    }
    w.validate(&mem).unwrap();
}

#[test]
fn stamp_chase_preserves_permutation_per_op() {
    let mut w = by_name("labyrinth", Size::Tiny, 5).unwrap();
    let mut mem = Memory::new();
    w.setup(&mut mem, 1);
    for _ in 0..6 {
        if let Some(inv) = w.next_ar(0, &mem) {
            execute(&inv, &mut mem);
            w.validate(&mem)
                .unwrap_or_else(|e| panic!("after one chase: {e}"));
        }
    }
}
