//! Every benchmark × every preset: the run must finish, commit the right
//! number of ARs, and pass the workload's own atomicity invariant.

use clear_machine::{Machine, Preset};
use clear_workloads::{all_benchmarks, by_name, Size, BENCHMARK_NAMES};

fn run_one(name: &str, preset: Preset, cores: usize, seed: u64) {
    let w = by_name(name, Size::Tiny, seed).unwrap();
    let mut cfg = preset.config(cores, 4);
    cfg.seed = seed;
    let mut m = Machine::new(cfg, w);
    let stats = m.run();
    assert!(!stats.timed_out, "{name}/{preset}: simulation timed out");
    assert!(stats.commits() > 0, "{name}/{preset}: no commits");
    m.workload()
        .validate(m.memory())
        .unwrap_or_else(|e| panic!("{name}/{preset}: invariant violated: {e}"));
}

#[test]
fn all_benchmarks_all_presets_preserve_invariants() {
    for name in BENCHMARK_NAMES {
        for preset in Preset::ALL {
            run_one(name, preset, 8, 0xC1EA);
        }
    }
}

#[test]
fn suite_is_deterministic_per_seed() {
    for name in ["arrayswap", "bst", "intruder"] {
        let run = |seed| {
            let w = by_name(name, Size::Tiny, seed).unwrap();
            let mut cfg = Preset::W.config(4, 4);
            cfg.seed = seed;
            Machine::new(cfg, w).run()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.total_cycles, b.total_cycles, "{name}");
        assert_eq!(a.aborts.total(), b.aborts.total(), "{name}");
        let c = run(8);
        // Different seeds virtually always diverge in timing.
        assert!(
            c.total_cycles != a.total_cycles || c.aborts.total() != a.aborts.total(),
            "{name}: different seeds produced identical runs"
        );
    }
}

#[test]
fn every_benchmark_issues_exactly_ops_times_threads_commits() {
    // Commits are per issued AR: the machine retries each until it commits.
    let threads = 4;
    for w in all_benchmarks(Size::Tiny, 3) {
        let name = w.meta().name.clone();
        let mut cfg = Preset::B.config(threads, 4);
        cfg.seed = 3;
        let mut m = Machine::new(cfg, w);
        let stats = m.run();
        let expected = threads as u64 * Size::Tiny.ops_per_thread() as u64;
        assert_eq!(stats.commits(), expected, "{name}");
    }
}

#[test]
fn clear_presets_exercise_cl_modes_somewhere() {
    // Across the full suite, C must commit some ARs in NS-CL and some in
    // S-CL (Fig. 12 shows both modes in use).
    let mut nscl = 0;
    let mut scl = 0;
    for name in BENCHMARK_NAMES {
        let w = by_name(name, Size::Tiny, 11).unwrap();
        let mut cfg = Preset::C.config(8, 4);
        cfg.seed = 11;
        let mut m = Machine::new(cfg, w);
        let stats = m.run();
        nscl += stats.commits_by_mode.nscl;
        scl += stats.commits_by_mode.scl;
    }
    assert!(nscl > 0, "no NS-CL commits anywhere in the suite");
    assert!(scl > 0, "no S-CL commits anywhere in the suite");
}

#[test]
fn labyrinth_never_converts_large_ars() {
    // Labyrinth's footprints exceed the 32-entry ALT: CLEAR must not run
    // NS-CL there (the paper reports it stays in fallback/speculative).
    let w = by_name("labyrinth", Size::Tiny, 5).unwrap();
    let mut cfg = Preset::C.config(8, 4);
    cfg.seed = 5;
    let mut m = Machine::new(cfg, w);
    let stats = m.run();
    assert_eq!(
        stats.commits_by_mode.nscl, 0,
        "labyrinth ARs are mutable and oversized; NS-CL impossible"
    );
}

#[test]
fn mwobject_commits_mostly_nscl_under_clear() {
    let w = by_name("mwobject", Size::Tiny, 5).unwrap();
    let mut cfg = Preset::C.config(8, 4);
    cfg.seed = 5;
    let mut m = Machine::new(cfg, w);
    let stats = m.run();
    let retried_commits: u64 = stats
        .commits_by_retries
        .iter()
        .filter(|(&r, _)| r >= 1)
        .map(|(_, &c)| c)
        .sum();
    // Under contention, retried mwobject ARs should convert to NS-CL.
    assert!(
        stats.commits_by_mode.nscl > 0 || retried_commits == 0,
        "mwobject retried {} ARs but committed none in NS-CL",
        retried_commits
    );
}

#[test]
fn single_core_runs_validate_program_semantics() {
    // With one core there is no concurrency: any invariant failure here is
    // a bug in the benchmark's mini-ISA programs themselves.
    for name in BENCHMARK_NAMES {
        let w = by_name(name, Size::Tiny, 77).unwrap();
        let mut cfg = Preset::B.config(1, 4);
        cfg.seed = 77;
        let mut m = Machine::new(cfg, w);
        let stats = m.run();
        assert_eq!(
            stats.aborts.total(),
            0,
            "{name}: single core cannot conflict"
        );
        assert_eq!(
            stats.commits(),
            Size::Tiny.ops_per_thread() as u64,
            "{name}"
        );
        m.workload()
            .validate(m.memory())
            .unwrap_or_else(|e| panic!("{name}: program semantics broken: {e}"));
    }
}

#[test]
fn two_seeds_give_different_operation_mixes() {
    // The RNG streams must actually vary the workload.
    let run = |seed: u64| {
        let w = by_name("bst", Size::Tiny, seed).unwrap();
        let mut cfg = Preset::B.config(2, 4);
        cfg.seed = seed;
        let mut m = Machine::new(cfg, w);
        m.run().instructions_retired
    };
    assert_ne!(run(1), run(2));
}
