//! Retry-threshold sensitivity curves.
//!
//! Thin wrapper over the `dse-retries` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run dse-retries` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout("dse-retries", &clear_bench::SuiteOptions::from_args());
}
