//! Design-space exploration of the retry threshold (§6 of the paper: "we
//! run from 1 to 10 retries for all benchmarks and select the
//! best-performing one"). Prints the full sensitivity curve per benchmark
//! so the best-of choice used by the figure harnesses is auditable.

use clear_bench::{run_once, trimmed_mean, SuiteOptions};
use clear_machine::Preset;

fn main() {
    let mut opts = SuiteOptions::from_args();
    if opts.retry_sweep.len() <= 3 {
        opts.retry_sweep = (1..=10).collect();
    }
    println!("=== Retry-threshold design-space exploration (cycles, per threshold) ===");
    for name in &opts.benchmarks {
        println!("\n{name}:");
        print!("{:>4}", "cfg");
        for r in &opts.retry_sweep {
            print!(" {:>10}", format!("r={r}"));
        }
        println!(" {:>6}", "best");
        for preset in Preset::ALL {
            print!("{:>4}", preset.letter());
            let mut best = (0u32, f64::INFINITY);
            for &r in &opts.retry_sweep {
                let cycles: Vec<f64> = opts
                    .seeds
                    .iter()
                    .map(|&s| {
                        run_once(name, preset, opts.cores, r, opts.size, s).total_cycles as f64
                    })
                    .collect();
                let mean = trimmed_mean(&cycles);
                if mean < best.1 {
                    best = (r, mean);
                }
                print!(" {:>10.0}", mean);
            }
            println!(" {:>6}", format!("r={}", best.0));
        }
    }
}
