//! Execution cycles vs core count.
//!
//! Thin wrapper over the `scaling` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run scaling` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout("scaling", &clear_bench::SuiteOptions::from_args());
}
