//! Core-count scaling study (our extension): how the four configurations
//! behave as contention grows from 2 to 32 threads. The paper evaluates a
//! fixed 32 cores; this harness shows where CLEAR's advantage opens up.

use clear_bench::{run_once, SuiteOptions};
use clear_machine::Preset;

fn main() {
    let opts = SuiteOptions::from_args();
    let cores_axis = [2usize, 4, 8, 16, 32];
    for name in &opts.benchmarks {
        println!("\n=== {name}: execution cycles vs cores ===");
        print!("{:>6}", "cores");
        for preset in Preset::ALL {
            print!(" {:>12}", format!("{preset}"));
        }
        println!(" {:>8}", "C/B");
        for &cores in &cores_axis {
            print!("{cores:>6}");
            let mut cycles = [0u64; 4];
            for (i, preset) in Preset::ALL.iter().enumerate() {
                let s = run_once(name, *preset, cores, 5, opts.size, opts.seeds[0]);
                cycles[i] = s.total_cycles;
                print!(" {:>12}", s.total_cycles);
            }
            println!(" {:>8.2}", cycles[2] as f64 / cycles[0] as f64);
        }
    }
    println!("\nC/B < 1 means CLEAR beats the requester-wins baseline at that core count");
}
