//! Figure 13: commit breakdown per number of retries.
//!
//! Thin wrapper over the `fig13` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run fig13` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout("fig13", &clear_bench::SuiteOptions::from_args());
}
