//! Figure 13 — commit breakdown by number of retries, excluding commits at
//! zero retries: exactly one retry, more than one ("n-retry"), or the
//! fallback path.
//!
//! Paper headline: B commits 35.4% of retried ARs on the first retry and
//! sends 37.2% to fallback; with CLEAR (C) 64.2% / 15.5%; with CLEAR over
//! PowerTM (W) 64.4% / 15.4%.

use clear_bench::{run_suite, SuiteOptions};
use clear_machine::RunStats;

fn shares(r: &RunStats) -> [f64; 3] {
    let one = r.commits_by_retries.get(&1).copied().unwrap_or(0);
    let many: u64 = r
        .commits_by_retries
        .iter()
        .filter(|(&k, _)| k >= 2)
        .map(|(_, &v)| v)
        .sum();
    let fb = r.commits_by_mode.fallback;
    let total = (one + many + fb).max(1) as f64;
    [one as f64 / total, many as f64 / total, fb as f64 / total]
}

fn main() {
    let opts = SuiteOptions::from_args();
    let suite = run_suite(&opts);
    println!("=== Figure 13: Commit breakdown per number of retries (retried ARs only) ===");
    println!(
        "{:14} {:>2}  {:>9} {:>9} {:>9}",
        "benchmark", "", "1-retry", "n-retry", "fallback"
    );
    let mut sums = [[0.0; 3]; 4];
    for cells in &suite {
        for (i, cell) in cells.iter().enumerate() {
            let s = [0, 1, 2].map(|k| cell.mean(|r| shares(r)[k]));
            for k in 0..3 {
                sums[i][k] += s[k];
            }
            println!(
                "{:14} {:>2}  {:>9.2} {:>9.2} {:>9.2}",
                cell.name,
                cell.preset.letter(),
                s[0],
                s[1],
                s[2]
            );
        }
        println!();
    }
    let n = suite.len() as f64;
    for (i, letter) in ['B', 'P', 'C', 'W'].iter().enumerate() {
        println!(
            "average {letter}: 1-retry {:.2}  n-retry {:.2}  fallback {:.2}",
            sums[i][0] / n,
            sums[i][1] / n,
            sums[i][2] / n
        );
    }
    println!("\npaper averages: B 35.4%/37.2%, P 46.4%/27.4%, C 64.2%/15.5%, W 64.4%/15.4% (1-retry/fallback)");
}
