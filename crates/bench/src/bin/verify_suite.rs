//! Atomicity invariants across the full benchmark grid.
//!
//! Thin wrapper over the `verify` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run verify` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout("verify", &clear_bench::SuiteOptions::from_args());
}
