//! Self-check: run every benchmark under every configuration and verify
//! its atomicity invariant over final simulated memory. Exits non-zero on
//! any violation — useful as a quick install check.
//!
//! ```text
//! cargo run --release -p clear-bench --bin verify_suite -- --size tiny --cores 8
//! ```

use clear_bench::SuiteOptions;
use clear_machine::{Machine, Preset};
use clear_workloads::by_name;

fn main() {
    let opts = SuiteOptions::from_args();
    let mut failures = 0;
    println!(
        "verifying {} benchmarks x 4 configurations ({:?}, {} cores, seed {})",
        opts.benchmarks.len(),
        opts.size,
        opts.cores,
        opts.seeds[0]
    );
    for name in &opts.benchmarks {
        print!("{name:14}");
        for preset in Preset::ALL {
            let w = by_name(name, opts.size, opts.seeds[0]).expect("known benchmark");
            let mut cfg = preset.config(opts.cores, 5);
            cfg.seed = opts.seeds[0];
            let mut m = Machine::new(cfg, w);
            let stats = m.run();
            let verdict = if stats.timed_out {
                failures += 1;
                "TIMEOUT"
            } else {
                match m.workload().validate(m.memory()) {
                    Ok(()) => "ok",
                    Err(e) => {
                        failures += 1;
                        eprintln!("\n{name}/{preset}: {e}");
                        "FAIL"
                    }
                }
            };
            print!("  {preset}:{verdict:<8}");
        }
        println!();
    }
    if failures == 0 {
        println!("\nall invariants hold");
    } else {
        eprintln!("\n{failures} failures");
        std::process::exit(1);
    }
}
