//! CLEAR with in-core (SLE) vs HTM speculation.
//!
//! Thin wrapper over the `sle` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run sle` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout("sle", &clear_bench::SuiteOptions::from_args());
}
