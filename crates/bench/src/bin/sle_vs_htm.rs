//! Extension study (paper §4.1 vs §4.2): CLEAR with **in-core** (SLE-style)
//! speculation, where the ROB delimits every speculative window, against
//! CLEAR with **HTM** facilities. ARs that outgrow the 352-entry ROB can
//! only complete through the fallback path under in-core speculation.

use clear_bench::SuiteOptions;
use clear_machine::{Machine, Preset, SpeculationKind};
use clear_workloads::by_name;

fn main() {
    let opts = SuiteOptions::from_args();
    println!("=== CLEAR with in-core (SLE) vs out-of-core (HTM) speculation ===");
    println!(
        "{:14} {:>12} {:>12} {:>9} | {:>12} {:>12} {:>9}",
        "benchmark", "HTM cycles", "HTM fb%", "HTM apc", "SLE cycles", "SLE fb%", "SLE apc"
    );
    for name in &opts.benchmarks {
        let mut cols = Vec::new();
        for speculation in [SpeculationKind::Htm, SpeculationKind::InCore] {
            let w = by_name(name, opts.size, opts.seeds[0]).expect("known benchmark");
            let mut cfg = Preset::C.config(opts.cores, 5);
            cfg.seed = opts.seeds[0];
            cfg.speculation = speculation;
            let mut m = Machine::new(cfg, w);
            let s = m.run();
            m.workload().validate(m.memory()).expect("invariant");
            cols.push((
                s.total_cycles,
                100.0 * s.commits_by_mode.fallback as f64 / s.commits() as f64,
                s.aborts_per_commit(),
            ));
        }
        println!(
            "{:14} {:>12} {:>12.1} {:>9.2} | {:>12} {:>12.1} {:>9.2}",
            name, cols[0].0, cols[0].1, cols[0].2, cols[1].0, cols[1].1, cols[1].2
        );
    }
    println!("\nfb% = share of ARs completing on the fallback path; apc = aborts per commit");
    println!("in-core speculation pushes ROB-exceeding ARs (long traversals) to fallback");
}
