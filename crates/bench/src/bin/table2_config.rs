//! Table 2 — the baseline system configuration actually instantiated by
//! the simulator (the reproduction's analogue of the gem5 parameters).

use clear_machine::MachineConfig;

fn main() {
    let c = MachineConfig::table2(32);
    println!("=== Table 2: Baseline system configuration ===");
    println!("Cores            {} in-order-retire cores, one instruction per step", c.cores);
    println!("Store queue      {} entries (bounds failed-mode discovery)", c.sq_size);
    println!(
        "L1 data cache    {} sets x {} ways ({} KiB), {}-cycle access",
        c.coherence.l1.sets,
        c.coherence.l1.ways,
        c.coherence.l1.lines() * 64 / 1024,
        c.coherence.lat_l1
    );
    println!("L2 (shadow)      {}-cycle access", c.coherence.lat_l2);
    println!("L3 / remote      {}-cycle access", c.coherence.lat_l3);
    println!("Memory           {}-cycle access", c.coherence.lat_mem);
    println!(
        "Directory        {} sets x {} ways (lexicographical lock order)",
        c.coherence.directory.sets, c.coherence.directory.ways
    );
    println!(
        "Coherence        directory MESI, +{} cycles per invalidation",
        c.coherence.lat_inval
    );
    println!(
        "HTM              requester-wins / PowerTM; best of 1..10 retries, then fallback lock"
    );
    println!(
        "Timing           xbegin {}, commit {}, abort {}, locked-line retry every {} cycles",
        c.timing.xbegin_cost, c.timing.commit_cost, c.timing.abort_penalty, c.timing.spin_interval
    );
    println!(
        "CLEAR            ERT 16 fully-assoc, ALT 32, CRT 64 (8-way); < 1 KiB per core"
    );
}
