//! Table 2: instantiated baseline system configuration.
//!
//! Thin wrapper over the `table2` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run table2` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout("table2", &clear_bench::SuiteOptions::from_args());
}
