//! Dump the event timeline of a short run: every AR fetch, attempt,
//! conflict, failed-mode entry, decision, lock, abort and commit, per
//! core — the fastest way to *see* CLEAR working.
//!
//! ```text
//! cargo run --release -p clear-bench --bin trace_dump -- --bench mwobject --cores 4
//! ```

use clear_bench::SuiteOptions;
use clear_machine::{Machine, Preset};
use clear_workloads::{by_name, Size};

fn main() {
    let opts = SuiteOptions::from_args();
    let name = opts.benchmarks.first().copied().unwrap_or("mwobject");
    let cores = opts.cores.min(8);
    let w = by_name(name, Size::Tiny, opts.seeds[0]).expect("known benchmark");
    let mut cfg = Preset::C.config(cores, 5);
    cfg.seed = opts.seeds[0];
    let mut m = Machine::new(cfg, w);
    m.enable_tracing();
    let stats = m.run();
    m.workload().validate(m.memory()).expect("invariant");

    println!("=== trace of {name} under CLEAR ({cores} cores, tiny input) ===\n");
    let events = m.trace().events();
    let shown = events.len().min(400);
    for (cycle, core, event) in &events[..shown] {
        println!("{cycle:>8}  core{core:<2}  {event}");
    }
    if events.len() > shown {
        println!("... {} more events", events.len() - shown);
    }
    println!(
        "\n{} commits ({} NS-CL, {} S-CL, {} fallback), {} aborts, {} cycles",
        stats.commits(),
        stats.commits_by_mode.nscl,
        stats.commits_by_mode.scl,
        stats.commits_by_mode.fallback,
        stats.aborts.total(),
        stats.total_cycles
    );
}
