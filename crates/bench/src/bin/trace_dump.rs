//! Event timeline of a short traced run.
//!
//! Thin wrapper over the `trace` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run trace` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout("trace", &clear_bench::SuiteOptions::from_args());
}
