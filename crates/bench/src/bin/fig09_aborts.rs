//! Figure 9 — aborts per committed transaction.
//!
//! Paper headline: B 7.9 → P 6.6 → C 1.6 → W 2.3.

use clear_bench::{print_table, run_suite, SuiteOptions};

fn main() {
    let opts = SuiteOptions::from_args();
    let suite = run_suite(&opts);
    let mut rows = Vec::new();
    let mut sums = [0.0; 4];
    for cells in &suite {
        let mut vals = [0.0; 4];
        for (i, cell) in cells.iter().enumerate() {
            vals[i] = cell.mean(|r| r.aborts_per_commit());
            sums[i] += vals[i];
        }
        rows.push((cells[0].name.clone(), vals));
    }
    let n = rows.len() as f64;
    print_table(
        "Figure 9: Aborts per committed transaction",
        "lower is better",
        &rows,
        ("average", sums.map(|s| s / n)),
    );
    println!("\npaper: B 7.9, P 6.6, C 1.6, W 2.3 (average)");
}
