//! Figure 9: aborts per committed transaction.
//!
//! Thin wrapper over the `fig09` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run fig09` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout("fig09", &clear_bench::SuiteOptions::from_args());
}
