//! Figure 8: execution time normalized to requester-wins.
//!
//! Thin wrapper over the `fig08` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run fig08` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout("fig08", &clear_bench::SuiteOptions::from_args());
}
