//! Figure 8 — execution time normalized to requester-wins (B), including
//! the share of time spent running aborted work in discovery.
//!
//! Paper headline: PowerTM −12.7% vs B; CLEAR −27.4% (over B) and −35.0%
//! (over PowerTM, i.e. configuration W vs B); discovery overhead usually
//! < 1%, peaking at ~3.4% for intruder.

use clear_bench::{geomean, print_table, run_suite, SuiteOptions};

fn main() {
    let opts = SuiteOptions::from_args();
    let suite = run_suite(&opts);

    let mut rows = Vec::new();
    let mut norms = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let mut disc_rows = Vec::new();
    for cells in &suite {
        let base = cells[0].cycles();
        let mut vals = [0.0; 4];
        let mut disc = [0.0; 4];
        for (i, cell) in cells.iter().enumerate() {
            vals[i] = cell.cycles() / base;
            norms[i].push(vals[i]);
            disc[i] = cell.mean(|r| {
                r.discovery_failed_cycles as f64
                    / (r.total_cycles as f64 * opts.cores as f64)
            });
        }
        rows.push((cells[0].name.clone(), vals));
        disc_rows.push((cells[0].name.clone(), disc));
    }
    let agg = [
        geomean(&norms[0]),
        geomean(&norms[1]),
        geomean(&norms[2]),
        geomean(&norms[3]),
    ];
    print_table(
        "Figure 8: Normalized execution time",
        "lower is better; normalized to B",
        &rows,
        ("geomean", agg),
    );
    print_table(
        "Figure 8 overlay: time running aborted in discovery",
        "fraction of machine time",
        &disc_rows,
        (
            "average",
            [0, 1, 2, 3].map(|i| {
                disc_rows.iter().map(|r| r.1[i]).sum::<f64>() / disc_rows.len() as f64
            }),
        ),
    );
    println!("\nbest retry threshold per cell:");
    for cells in &suite {
        println!(
            "  {:14} B={} P={} C={} W={}",
            cells[0].name,
            cells[0].best_retries,
            cells[1].best_retries,
            cells[2].best_retries,
            cells[3].best_retries
        );
    }
    println!("\npaper: P -12.7%, C -27.4%, W -35.0% vs B (geomean)");
}
