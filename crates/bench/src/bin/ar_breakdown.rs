//! Per-atomic-region breakdown: connects the static Table 1 classification
//! of every AR to its dynamic outcome under CLEAR — which ARs converted to
//! NS-CL/S-CL, which stayed speculative, which fell back.
//!
//! ```text
//! cargo run --release -p clear-bench --bin ar_breakdown -- --bench kmeans-h
//! ```

use clear_bench::SuiteOptions;
use clear_machine::{Machine, Preset};
use clear_workloads::by_name;

fn main() {
    let opts = SuiteOptions::from_args();
    for name in &opts.benchmarks {
        let w = by_name(name, opts.size, opts.seeds[0]).expect("known benchmark");
        let meta = w.meta();
        let mut cfg = Preset::C.config(opts.cores, 5);
        cfg.seed = opts.seeds[0];
        let mut m = Machine::new(cfg, w);
        let stats = m.run();
        m.workload().validate(m.memory()).expect("invariant");

        println!("\n=== {name} (configuration C) ===");
        println!(
            "{:16} {:18} {:>8} {:>8} {:>7} {:>7} {:>7} {:>9}",
            "AR", "static class", "commits", "aborts", "spec%", "S-CL%", "NS-CL%", "fallback%"
        );
        for spec in &meta.ars {
            let e = stats.ar_stats.get(&spec.id.0).copied().unwrap_or_default();
            let total = e.by_mode.total().max(1) as f64;
            println!(
                "{:16} {:18} {:>8} {:>8} {:>7.1} {:>7.1} {:>7.1} {:>9.1}",
                spec.name,
                spec.mutability.to_string(),
                e.commits,
                e.aborts,
                100.0 * e.by_mode.speculative as f64 / total,
                100.0 * e.by_mode.scl as f64 / total,
                100.0 * e.by_mode.nscl as f64 / total,
                100.0 * e.by_mode.fallback as f64 / total,
            );
        }
    }
    println!("\nimmutable ARs should convert to NS-CL under contention; likely-immutable");
    println!("and small mutable ARs to S-CL; oversized ARs stay speculative/fallback");
}
