//! Per-AR dynamic outcome under CLEAR.
//!
//! Thin wrapper over the `ar-breakdown` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run ar-breakdown` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout(
        "ar-breakdown",
        &clear_bench::SuiteOptions::from_args(),
    );
}
