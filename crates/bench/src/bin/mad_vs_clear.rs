//! A-priori cacheline locking vs speculation vs CLEAR.
//!
//! Thin wrapper over the `mad-vs-clear` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run mad-vs-clear` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout(
        "mad-vs-clear",
        &clear_bench::SuiteOptions::from_args(),
    );
}
