//! The paper's §1–§2 motivating comparison, reproduced: **a-priori
//! cacheline locking** (MCAS \[33\] / MAD atomics \[16\]: lock the footprint
//! before executing, never speculate) versus **speculation** (B) versus
//! **CLEAR** (learn the footprint speculatively, lock only on retry).
//!
//! The paper's argument: a-priori locking wins under high contention but
//! "can degrade performance in low-contention scenarios, since (i)
//! execution cannot start until all cachelines have been locked in order
//! and (ii) exclusivity is requested also for cachelines that are only
//! read". CLEAR keeps the speculative fast path *and* the bounded retry.
//! Only ARs with statically-known footprints are eligible for a-priori
//! locking (arrayswap, mwobject, the immutable STAMP ARs); the rest run
//! the baseline under that model.

use clear_bench::SuiteOptions;
use clear_machine::{Machine, MachineConfig, Preset, RunStats};
use clear_workloads::by_name;

fn run(name: &str, cfg: MachineConfig, seed: u64, size: clear_workloads::Size) -> RunStats {
    let w = by_name(name, size, seed).expect("known benchmark");
    let mut cfg = cfg;
    cfg.seed = seed;
    let mut m = Machine::new(cfg, w);
    let s = m.run();
    m.workload().validate(m.memory()).expect("invariant");
    s
}

fn main() {
    let opts = SuiteOptions::from_args();
    // Benchmarks with at least one statically-lockable AR.
    let eligible = ["arrayswap", "mwobject", "kmeans-h", "kmeans-l", "ssca2", "sorted-list"];
    println!("=== a-priori locking (MAD/MCAS-style) vs speculation vs CLEAR ===");
    println!(
        "{:14} {:>6} | {:>12} {:>12} {:>12} | {:>8} {:>8}",
        "benchmark", "cores", "B cycles", "MAD cycles", "C cycles", "MAD/B", "C/B"
    );
    for name in eligible {
        if !opts.benchmarks.contains(&name) {
            continue;
        }
        for cores in [2usize, 8, 32] {
            let b = run(name, Preset::B.config(cores, 5), opts.seeds[0], opts.size);
            let mut mad_cfg = Preset::B.config(cores, 5);
            mad_cfg.a_priori_locking = true;
            let mad = run(name, mad_cfg, opts.seeds[0], opts.size);
            let c = run(name, Preset::C.config(cores, 5), opts.seeds[0], opts.size);
            println!(
                "{:14} {:>6} | {:>12} {:>12} {:>12} | {:>8.2} {:>8.2}",
                name,
                cores,
                b.total_cycles,
                mad.total_cycles,
                c.total_cycles,
                mad.total_cycles as f64 / b.total_cycles as f64,
                c.total_cycles as f64 / b.total_cycles as f64,
            );
        }
    }
    println!("\nreading the table: MAD excels exactly where its static footprints apply");
    println!("(write-heavy immutable ARs like arrayswap/mwobject) but cannot touch the");
    println!("mutable/indirect ARs, so CLEAR matches or beats it on mixed workloads");
    println!("(kmeans, ssca2, sorted-list) — and needs no new instructions (§1)");
}
