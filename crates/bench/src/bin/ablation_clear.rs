//! Ablation study of CLEAR's design choices (not a paper figure; DESIGN.md
//! commits to these):
//!
//! * **CRT** on/off — does locking previously-conflicting reads help S-CL?
//! * **S-CL lock policy** — write-set+CRT (the paper's choice) vs locking
//!   every accessed line (the rejected §4.4.2 alternative);
//! * **ALT size** — 8/32/64 entries (footprint convertibility bound);
//! * **ERT size** — 4 vs 16 entries (static-AR working set).

use clear_bench::{run_once, SuiteOptions};
use clear_core::{ClearConfig, SclLockPolicy};
use clear_machine::{Machine, Preset, RunStats};
use clear_workloads::by_name;

fn run_variant(
    name: &str,
    opts: &SuiteOptions,
    tweak: impl Fn(&mut ClearConfig),
) -> RunStats {
    let w = by_name(name, opts.size, opts.seeds[0]).expect("known benchmark");
    let mut cfg = Preset::C.config(opts.cores, 5);
    cfg.seed = opts.seeds[0];
    tweak(cfg.clear.as_mut().expect("preset C has CLEAR"));
    let mut m = Machine::new(cfg, w);
    let s = m.run();
    m.workload().validate(m.memory()).expect("invariant");
    s
}

fn main() {
    let opts = SuiteOptions::from_args();
    let apps = ["arrayswap", "bst", "hashmap", "intruder", "labyrinth", "mwobject"];
    println!("=== CLEAR ablations (configuration C, retries=5) ===");
    println!(
        "{:12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "baseline-B", "C", "C/no-CRT", "C/lock-all", "C/ALT-8", "C/ALT-64", "C/ERT-4"
    );
    for name in apps {
        if !opts.benchmarks.contains(&name) {
            continue;
        }
        let b = run_once(name, Preset::B, opts.cores, 5, opts.size, opts.seeds[0]);
        let c = run_variant(name, &opts, |_| {});
        let no_crt = run_variant(name, &opts, |cc| {
            cc.crt_sets = 1;
            cc.crt_ways = 1;
        });
        let lock_all = run_variant(name, &opts, |cc| {
            cc.scl_lock_policy = SclLockPolicy::AllAccessed;
        });
        let alt8 = run_variant(name, &opts, |cc| cc.alt_entries = 8);
        let alt64 = run_variant(name, &opts, |cc| cc.alt_entries = 64);
        let ert4 = run_variant(name, &opts, |cc| cc.ert_entries = 4);
        println!(
            "{:12} {:>12} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            name,
            b.total_cycles,
            c.total_cycles as f64 / b.total_cycles as f64,
            no_crt.total_cycles as f64 / b.total_cycles as f64,
            lock_all.total_cycles as f64 / b.total_cycles as f64,
            alt8.total_cycles as f64 / b.total_cycles as f64,
            alt64.total_cycles as f64 / b.total_cycles as f64,
            ert4.total_cycles as f64 / b.total_cycles as f64,
        );
    }
    println!("\ncolumns (except baseline-B, in cycles) are normalized to B; lower is better");
}
