//! CLEAR design-choice ablations (CRT, lock policy, ALT, ERT).
//!
//! Thin wrapper over the `ablation` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run ablation` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout("ablation", &clear_bench::SuiteOptions::from_args());
}
