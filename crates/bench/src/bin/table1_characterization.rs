//! Table 1: static AR characterization per benchmark; with `--measured`,
//! the dynamic immutability of discovery decisions per AR instead.
//!
//! Thin wrapper over the `table1` / `table1-measured` experiments in the
//! `clear-harness` registry; `cargo run -p clear-harness -- run table1`
//! is equivalent.

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let measured = args
        .iter()
        .position(|a| a == "--measured")
        .map(|i| args.remove(i))
        .is_some();
    let name = if measured {
        "table1-measured"
    } else {
        "table1"
    };
    clear_bench::experiments::run_to_stdout(
        name,
        &clear_bench::SuiteOptions::from_arg_slice(&args),
    );
}
