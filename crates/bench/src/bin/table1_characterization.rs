//! Table 1 — static characterisation of the atomic regions of every
//! benchmark: number of ARs and their footprint-mutability classes.
//!
//! With `--measured`, additionally runs each benchmark under CLEAR (small
//! input, 16 cores) and reports, per AR, the share of discovery decisions
//! that assessed the footprint immutable — a dynamic validation of the
//! static classes: immutable ARs should measure ~100 %, likely-immutable
//! and mutable ARs ~0 % (the hardware cannot tell the two apart; the
//! difference is whether S-CL retries then succeed).

use clear_isa::Mutability;
use clear_machine::{Machine, Preset, TraceEvent};
use clear_workloads::{by_name, Size, BENCHMARK_NAMES};
use std::collections::HashMap;

fn measured_immutability(name: &str) -> HashMap<u32, (u64, u64)> {
    let w = by_name(name, Size::Small, 5).expect("known benchmark");
    let mut cfg = Preset::C.config(16, 5);
    cfg.seed = 5;
    let mut m = Machine::new(cfg, w);
    m.enable_tracing();
    m.run();
    let mut per_ar: HashMap<u32, (u64, u64)> = HashMap::new();
    for (_, _, e) in m.trace().events() {
        if let TraceEvent::Decision { ar, immutable, .. } = e {
            let slot = per_ar.entry(ar.0).or_default();
            slot.1 += 1;
            if *immutable {
                slot.0 += 1;
            }
        }
    }
    per_ar
}

fn main() {
    let measured = std::env::args().any(|a| a == "--measured");
    if measured {
        println!("=== Table 1 (measured): share of discovery decisions assessing immutability ===");
        println!(
            "{:14} {:16} {:18} {:>10} {:>10}",
            "benchmark", "AR", "static class", "decisions", "immut.%"
        );
        for name in BENCHMARK_NAMES {
            let w = by_name(name, Size::Tiny, 1).expect("known benchmark");
            let meta = w.meta();
            let dyn_imm = measured_immutability(name);
            for spec in &meta.ars {
                let (imm, total) = dyn_imm.get(&spec.id.0).copied().unwrap_or((0, 0));
                let pct = if total == 0 { f64::NAN } else { 100.0 * imm as f64 / total as f64 };
                println!(
                    "{:14} {:16} {:18} {:>10} {:>10.0}",
                    name,
                    spec.name,
                    spec.mutability.to_string(),
                    total,
                    pct
                );
            }
        }
        return;
    }
    println!("=== Table 1: Characterization of ARs ===");
    println!(
        "{:14} {:>8} {:>10} {:>17} {:>8}",
        "benchmark", "# of ARs", "immutable", "likely immutable", "mutable"
    );
    let mut totals = [0usize; 4];
    for name in BENCHMARK_NAMES {
        let w = by_name(name, Size::Tiny, 1).expect("known benchmark");
        let meta = w.meta();
        let count =
            |m: Mutability| meta.ars.iter().filter(|a| a.mutability == m).count();
        let (i, l, mu) = (
            count(Mutability::Immutable),
            count(Mutability::LikelyImmutable),
            count(Mutability::Mutable),
        );
        totals[0] += meta.ars.len();
        totals[1] += i;
        totals[2] += l;
        totals[3] += mu;
        println!(
            "{:14} {:>8} {:>10} {:>17} {:>8}",
            name,
            meta.ars.len(),
            i,
            l,
            mu
        );
    }
    println!(
        "{:14} {:>8} {:>10} {:>17} {:>8}",
        "total", totals[0], totals[1], totals[2], totals[3]
    );
}
