//! Figure 1 — ratio of retrying ARs that access ≤ 32 cachelines and whose
//! footprint is identical between the first attempt and the first retry.
//!
//! Measured on the requester-wins baseline (the motivation figure predates
//! CLEAR). The paper reports a 60.2% average across the suite.

use clear_bench::{run_once, trimmed_mean, SuiteOptions};
use clear_machine::Preset;

fn main() {
    let opts = SuiteOptions::from_args();
    println!("=== Figure 1: ARs that do not change their accessed cachelines on the first retry ===");
    println!("{:14} {:>10} {:>12} {:>8}", "benchmark", "retried", "immutable", "ratio");
    let mut ratios = Vec::new();
    for name in &opts.benchmarks {
        let runs: Vec<_> = opts
            .seeds
            .iter()
            .map(|&s| run_once(name, Preset::B, opts.cores, 5, opts.size, s))
            .collect();
        let retried: u64 = runs.iter().map(|r| r.retried_ars).sum();
        let immutable: u64 = runs.iter().map(|r| r.immutable_small_retries).sum();
        let ratio = trimmed_mean(
            &runs.iter().map(|r| r.immutable_retry_ratio()).collect::<Vec<_>>(),
        );
        ratios.push(ratio);
        println!("{:14} {:>10} {:>12} {:>8.2}", name, retried, immutable, ratio);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("{:14} {:>10} {:>12} {:>8.2}", "average", "", "", avg);
    println!("\npaper: 60.2% of ARs that abort keep a small immutable footprint on the first retry");
}
