//! Figure 1: share of retried ARs with a small immutable footprint.
//!
//! Thin wrapper over the `fig01` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run fig01` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout("fig01", &clear_bench::SuiteOptions::from_args());
}
