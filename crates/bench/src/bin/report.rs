//! Figures 8-13 in one pass over a single suite run.
//!
//! Thin wrapper over the `report` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run report` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout("report", &clear_bench::SuiteOptions::from_args());
}
