//! One-pass evaluation report: runs the benchmark suite once (with the
//! per-application retry sweep) and prints Figures 8, 9, 10, 11, 12 and 13
//! from the same runs — the cheapest way to regenerate EXPERIMENTS.md.
//!
//! Figure 1 and the tables have their own binaries (`fig01_immutable_ratio`,
//! `table1_characterization`, `table2_config`) since they use different
//! configurations.

use clear_bench::{geomean, print_table, run_suite, CellResult, SuiteOptions};
use clear_htm::AbortKind;
use clear_machine::RunStats;

fn norm_rows(
    suite: &[[CellResult; 4]],
    metric: impl Fn(&CellResult) -> f64,
) -> (Vec<(String, [f64; 4])>, [f64; 4]) {
    let mut rows = Vec::new();
    let mut norms = [const { Vec::new() }; 4];
    for cells in suite {
        let base = metric(&cells[0]);
        let mut vals = [0.0; 4];
        for (i, cell) in cells.iter().enumerate() {
            vals[i] = metric(cell) / base;
            norms[i].push(vals[i]);
        }
        rows.push((cells[0].name.clone(), vals));
    }
    (rows, [0, 1, 2, 3].map(|i| geomean(&norms[i])))
}

fn mean_rows(
    suite: &[[CellResult; 4]],
    metric: impl Fn(&RunStats) -> f64,
) -> (Vec<(String, [f64; 4])>, [f64; 4]) {
    let mut rows = Vec::new();
    let mut sums = [0.0; 4];
    for cells in suite {
        let mut vals = [0.0; 4];
        for (i, cell) in cells.iter().enumerate() {
            vals[i] = cell.mean(&metric);
            sums[i] += vals[i];
        }
        rows.push((cells[0].name.clone(), vals));
    }
    let n = suite.len() as f64;
    (rows, sums.map(|s| s / n))
}

fn main() {
    let opts = SuiteOptions::from_args();
    eprintln!(
        "suite: {:?} size, {} cores, {} seeds, sweep {:?}",
        opts.size, opts.cores, opts.seeds.len(), opts.retry_sweep
    );
    let suite = run_suite(&opts);

    // Figure 8.
    let (rows, agg) = norm_rows(&suite, CellResult::cycles);
    print_table(
        "Figure 8: Normalized execution time",
        "normalized to B; lower is better",
        &rows,
        ("geomean", agg),
    );

    // Figure 9.
    let (rows, agg) = mean_rows(&suite, RunStats::aborts_per_commit);
    print_table(
        "Figure 9: Aborts per committed transaction",
        "lower is better",
        &rows,
        ("average", agg),
    );

    // Figure 10.
    let (rows, agg) = norm_rows(&suite, CellResult::energy);
    print_table(
        "Figure 10: Normalized energy consumption",
        "normalized to B; lower is better",
        &rows,
        ("geomean", agg),
    );

    // Figure 11: averaged abort-type shares.
    println!("\n=== Figure 11: Abort breakdown per type (suite average shares) ===");
    for (i, letter) in ['B', 'P', 'C', 'W'].iter().enumerate() {
        let share = |kind: AbortKind| {
            suite
                .iter()
                .map(|cells| {
                    cells[i].mean(|r| r.aborts.get(kind) as f64 / r.aborts.total().max(1) as f64)
                })
                .sum::<f64>()
                / suite.len() as f64
        };
        let mem = share(AbortKind::MemoryConflict);
        let efb = share(AbortKind::ExplicitFallback);
        let ofb = share(AbortKind::OtherFallback);
        println!(
            "{letter}: memory-conflict {:.2}  explicit-fallback {:.2}  other-fallback {:.2}  others {:.2}",
            mem,
            efb,
            ofb,
            (1.0 - mem - efb - ofb).max(0.0)
        );
    }

    // Figure 12: commit mode shares.
    println!("\n=== Figure 12: Commit breakdown per mode ===");
    println!(
        "{:14} {:>2}  {:>11} {:>8} {:>8} {:>9}",
        "benchmark", "", "speculative", "S-CL", "NS-CL", "fallback"
    );
    for cells in &suite {
        for cell in cells {
            let s = cell.mean(|r| r.commits_by_mode.speculative as f64 / r.commits() as f64);
            let scl = cell.mean(|r| r.commits_by_mode.scl as f64 / r.commits() as f64);
            let nscl = cell.mean(|r| r.commits_by_mode.nscl as f64 / r.commits() as f64);
            let fb = cell.mean(|r| r.commits_by_mode.fallback as f64 / r.commits() as f64);
            println!(
                "{:14} {:>2}  {:>11.2} {:>8.2} {:>8.2} {:>9.2}",
                cell.name,
                cell.preset.letter(),
                s,
                scl,
                nscl,
                fb
            );
        }
    }

    // Figure 13: retried-AR outcome shares.
    println!("\n=== Figure 13: Commit breakdown per number of retries (retried ARs only) ===");
    let retry_shares = |r: &RunStats| -> [f64; 3] {
        let one = r.commits_by_retries.get(&1).copied().unwrap_or(0);
        let many: u64 = r
            .commits_by_retries
            .iter()
            .filter(|(&k, _)| k >= 2)
            .map(|(_, &v)| v)
            .sum();
        let fb = r.commits_by_mode.fallback;
        let total = (one + many + fb).max(1) as f64;
        [one as f64 / total, many as f64 / total, fb as f64 / total]
    };
    for (i, letter) in ['B', 'P', 'C', 'W'].iter().enumerate() {
        let avg = |k: usize| {
            suite.iter().map(|cells| cells[i].mean(|r| retry_shares(r)[k])).sum::<f64>()
                / suite.len() as f64
        };
        println!(
            "{letter}: 1-retry {:.2}  n-retry {:.2}  fallback {:.2}",
            avg(0),
            avg(1),
            avg(2)
        );
    }

    println!("\nbest retry threshold per cell:");
    for cells in &suite {
        println!(
            "  {:14} B={} P={} C={} W={}",
            cells[0].name,
            cells[0].best_retries,
            cells[1].best_retries,
            cells[2].best_retries,
            cells[3].best_retries
        );
    }
}
