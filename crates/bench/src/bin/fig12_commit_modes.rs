//! Figure 12: commit breakdown per execution mode.
//!
//! Thin wrapper over the `fig12` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run fig12` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout("fig12", &clear_bench::SuiteOptions::from_args());
}
