//! Figure 12 — commit breakdown per execution mode: plain speculative,
//! S-CL, NS-CL, fallback.
//!
//! Paper observations reproduced: mwobject runs mostly NS-CL; arrayswap
//! partly NS-CL; bst commits in S-CL despite being statically mutable;
//! labyrinth cannot convert at all.

use clear_bench::{run_suite, SuiteOptions};
use clear_machine::RunStats;

fn shares(r: &RunStats) -> [f64; 4] {
    let m = &r.commits_by_mode;
    let total = m.total().max(1) as f64;
    [
        m.speculative as f64 / total,
        m.scl as f64 / total,
        m.nscl as f64 / total,
        m.fallback as f64 / total,
    ]
}

fn main() {
    let opts = SuiteOptions::from_args();
    let suite = run_suite(&opts);
    println!("=== Figure 12: Commit breakdown per mode ===");
    println!(
        "{:14} {:>2}  {:>11} {:>8} {:>8} {:>9}",
        "benchmark", "", "speculative", "S-CL", "NS-CL", "fallback"
    );
    for cells in &suite {
        for cell in cells {
            let s = [0, 1, 2, 3].map(|k| cell.mean(|r| shares(r)[k]));
            println!(
                "{:14} {:>2}  {:>11.2} {:>8.2} {:>8.2} {:>9.2}",
                cell.name,
                cell.preset.letter(),
                s[0],
                s[1],
                s[2],
                s[3]
            );
        }
        println!();
    }
}
