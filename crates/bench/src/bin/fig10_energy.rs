//! Figure 10: energy normalized to requester-wins.
//!
//! Thin wrapper over the `fig10` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run fig10` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout("fig10", &clear_bench::SuiteOptions::from_args());
}
