//! Figure 10 — energy consumption normalized to requester-wins.
//!
//! Paper headline: C −26.4% vs B; W −30.6% (both from shorter runtime and
//! fewer wasted instructions).

use clear_bench::{geomean, print_table, run_suite, SuiteOptions};

fn main() {
    let opts = SuiteOptions::from_args();
    let suite = run_suite(&opts);
    let mut rows = Vec::new();
    let mut norms = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for cells in &suite {
        let base = cells[0].energy();
        let mut vals = [0.0; 4];
        for (i, cell) in cells.iter().enumerate() {
            vals[i] = cell.energy() / base;
            norms[i].push(vals[i]);
        }
        rows.push((cells[0].name.clone(), vals));
    }
    let agg = [
        geomean(&norms[0]),
        geomean(&norms[1]),
        geomean(&norms[2]),
        geomean(&norms[3]),
    ];
    print_table(
        "Figure 10: Normalized energy consumption",
        "lower is better; normalized to B",
        &rows,
        ("geomean", agg),
    );
    println!("\npaper: C -26.4% vs B, W -30.6% vs B (average)");
}
