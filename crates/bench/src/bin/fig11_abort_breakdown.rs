//! Figure 11: abort breakdown per type.
//!
//! Thin wrapper over the `fig11` experiment in the `clear-harness`
//! registry; `cargo run -p clear-harness -- run fig11` is equivalent.

fn main() {
    clear_bench::experiments::run_to_stdout("fig11", &clear_bench::SuiteOptions::from_args());
}
