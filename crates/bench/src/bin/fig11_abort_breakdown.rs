//! Figure 11 — abort breakdown per type: memory conflict, explicit
//! fallback, other fallback, others (capacity/NACK/explicit/etc.).

use clear_bench::{run_suite, SuiteOptions};
use clear_htm::AbortKind;
use clear_machine::RunStats;

fn shares(r: &RunStats) -> [f64; 4] {
    let total = r.aborts.total().max(1) as f64;
    let mem = r.aborts.get(AbortKind::MemoryConflict) as f64;
    let efb = r.aborts.get(AbortKind::ExplicitFallback) as f64;
    let ofb = r.aborts.get(AbortKind::OtherFallback) as f64;
    let others = total - mem - efb - ofb;
    [mem / total, efb / total, ofb / total, others / total]
}

fn main() {
    let opts = SuiteOptions::from_args();
    let suite = run_suite(&opts);
    println!("=== Figure 11: Abort breakdown per type ===");
    println!(
        "{:14} {:>2}  {:>8} {:>10} {:>10} {:>8}  {:>10}",
        "benchmark", "", "mem-conf", "expl-fb", "other-fb", "others", "aborts/AR"
    );
    for cells in &suite {
        for cell in cells {
            let s = [0, 1, 2, 3].map(|k| cell.mean(|r| shares(r)[k]));
            let apc = cell.mean(|r| r.aborts_per_commit());
            println!(
                "{:14} {:>2}  {:>8.2} {:>10.2} {:>10.2} {:>8.2}  {:>10.2}",
                cell.name,
                cell.preset.letter(),
                s[0],
                s[1],
                s[2],
                s[3],
                apc
            );
        }
        println!();
    }
    println!("shares are fractions of each configuration's own aborts");
}
