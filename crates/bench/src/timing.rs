//! Minimal fixed-iteration wall-clock timing harness for the `cargo
//! bench` targets (replacing the former Criterion dependency).
//!
//! Each measurement warms up, then runs a fixed number of timed
//! iterations and reports the per-iteration mean. This is deliberately
//! simple: the micro-benchmarks exist to catch order-of-magnitude
//! regressions on the simulator's hot paths, not to resolve nanosecond
//! deltas.

pub use std::hint::black_box;
use std::time::Instant;

/// Times `f` over `iters` iterations (after `iters / 10 + 1` warm-up
/// calls) and prints one `name ... ns/iter` line.
pub fn bench_function<T>(name: &str, iters: u64, mut f: impl FnMut() -> T) {
    for _ in 0..iters / 10 + 1 {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let elapsed = start.elapsed();
    let per_iter = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<40} {per_iter:>14.1} ns/iter  ({iters} iters, {elapsed:.2?} total)");
}
