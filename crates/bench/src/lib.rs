//! Shared harness for regenerating every table and figure of the paper.
//!
//! Each `src/bin/figNN_*` / `src/bin/tableN_*` binary reproduces one
//! artifact of the evaluation section; this library holds the common
//! machinery: option parsing, the per-application best-of-1..10 retry
//! sweep, seed aggregation with trimmed means (the paper runs 10 seeds and
//! trims 3 outliers), and table formatting.
//!
//! Common CLI options accepted by every harness binary:
//!
//! * `--size tiny|small|medium` — input scale (default `small`; the
//!   EXPERIMENTS.md numbers use `medium`);
//! * `--cores N` — simulated cores (default 32, as in the paper);
//! * `--seeds N` — independent seeds per configuration (default 3);
//! * `--sweep full|quick|none` — retry-threshold sweep: `full` = 1..=10 as
//!   in the paper, `quick` = {2,5,8} (default), `none` = fixed 5;
//! * `--bench NAME` — restrict to one benchmark (repeatable).

#![warn(missing_docs)]

use clear_machine::{Machine, MachineConfig, Preset, RunStats};
use clear_workloads::{by_name, Size, BENCHMARK_NAMES};

/// Parsed harness options.
#[derive(Clone, Debug)]
pub struct SuiteOptions {
    /// Input scale.
    pub size: Size,
    /// Simulated core count.
    pub cores: usize,
    /// Seeds to aggregate over.
    pub seeds: Vec<u64>,
    /// Retry thresholds to sweep (best one is picked per app × preset).
    pub retry_sweep: Vec<u32>,
    /// Benchmarks to run.
    pub benchmarks: Vec<&'static str>,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            size: Size::Small,
            cores: 32,
            seeds: vec![1, 2, 3],
            retry_sweep: vec![2, 5, 8],
            benchmarks: BENCHMARK_NAMES.to_vec(),
        }
    }
}

impl SuiteOptions {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed options.
    pub fn from_args() -> Self {
        let mut o = SuiteOptions::default();
        let mut picked: Vec<&'static str> = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut val = || args.next().unwrap_or_else(|| panic!("missing value for {a}"));
            match a.as_str() {
                "--size" => {
                    o.size = match val().as_str() {
                        "tiny" => Size::Tiny,
                        "small" => Size::Small,
                        "medium" => Size::Medium,
                        other => panic!("unknown size {other}"),
                    }
                }
                "--cores" => o.cores = val().parse().expect("--cores N"),
                "--seeds" => {
                    let n: u64 = val().parse().expect("--seeds N");
                    o.seeds = (1..=n).collect();
                }
                "--sweep" => {
                    o.retry_sweep = match val().as_str() {
                        "full" => (1..=10).collect(),
                        "quick" => vec![2, 5, 8],
                        "none" => vec![5],
                        other => panic!("unknown sweep {other}"),
                    }
                }
                "--bench" => {
                    let name = val();
                    let known = BENCHMARK_NAMES
                        .iter()
                        .find(|n| **n == name)
                        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
                    picked.push(known);
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --size tiny|small|medium --cores N --seeds N \
                         --sweep full|quick|none --bench NAME"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown option {other}"),
            }
        }
        if !picked.is_empty() {
            o.benchmarks = picked;
        }
        o
    }
}

/// Runs one benchmark once under a fully specified configuration.
///
/// # Panics
///
/// Panics if the benchmark name is unknown, the run times out, or the
/// workload's atomicity invariant fails — a harness must never report
/// numbers from a broken run.
pub fn run_once(
    name: &str,
    preset: Preset,
    cores: usize,
    max_retries: u32,
    size: Size,
    seed: u64,
) -> RunStats {
    let workload = by_name(name, size, seed).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let mut cfg: MachineConfig = preset.config(cores, max_retries);
    cfg.seed = seed;
    let mut machine = Machine::new(cfg, workload);
    let stats = machine.run();
    assert!(!stats.timed_out, "{name}/{preset}: run timed out");
    machine
        .workload()
        .validate(machine.memory())
        .unwrap_or_else(|e| panic!("{name}/{preset}: invariant violated: {e}"));
    stats
}

/// Aggregated result of one benchmark × preset cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Benchmark name.
    pub name: String,
    /// Configuration letter.
    pub preset: Preset,
    /// The retry threshold that minimised mean execution time (the paper's
    /// per-application design-space exploration).
    pub best_retries: u32,
    /// One `RunStats` per seed at the best threshold.
    pub runs: Vec<RunStats>,
}

impl CellResult {
    /// Trimmed-mean cycles across seeds.
    pub fn cycles(&self) -> f64 {
        trimmed_mean(&self.runs.iter().map(|r| r.total_cycles as f64).collect::<Vec<_>>())
    }

    /// Trimmed-mean total energy across seeds.
    pub fn energy(&self) -> f64 {
        trimmed_mean(&self.runs.iter().map(|r| r.energy.total()).collect::<Vec<_>>())
    }

    /// Mean of an arbitrary per-run metric.
    pub fn mean<F: Fn(&RunStats) -> f64>(&self, f: F) -> f64 {
        trimmed_mean(&self.runs.iter().map(f).collect::<Vec<_>>())
    }
}

/// Runs the retry sweep for one benchmark × preset and returns the best
/// cell (paper §6: "we run from 1 to 10 retries for all benchmarks and
/// select the best-performing one").
pub fn run_cell(name: &str, preset: Preset, opts: &SuiteOptions) -> CellResult {
    let mut best: Option<CellResult> = None;
    for &retries in &opts.retry_sweep {
        let runs: Vec<RunStats> = opts
            .seeds
            .iter()
            .map(|&s| run_once(name, preset, opts.cores, retries, opts.size, s))
            .collect();
        let cell = CellResult {
            name: name.to_string(),
            preset,
            best_retries: retries,
            runs,
        };
        let better = best.as_ref().map(|b| cell.cycles() < b.cycles()).unwrap_or(true);
        if better {
            best = Some(cell);
        }
    }
    best.expect("non-empty sweep")
}

/// Runs every benchmark in `opts` under all four presets.
pub fn run_suite(opts: &SuiteOptions) -> Vec<[CellResult; 4]> {
    opts.benchmarks
        .iter()
        .map(|name| {
            eprintln!("running {name} ...");
            [
                run_cell(name, Preset::B, opts),
                run_cell(name, Preset::P, opts),
                run_cell(name, Preset::C, opts),
                run_cell(name, Preset::W, opts),
            ]
        })
        .collect()
}

/// Mean after dropping the ⌈30%⌉ most extreme values (the paper's
/// 10-runs-drop-3-outliers methodology, scaled to the sample size).
pub fn trimmed_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "trimmed_mean of empty slice");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let drop = (v.len() * 3) / 10;
    // Drop the most extreme values relative to the median, alternating ends.
    let kept = &v[drop / 2..v.len() - drop.div_ceil(2)];
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Renders a value as a horizontal bar scaled against `max` (the paper's
/// figures are bar charts; the terminal gets the next best thing).
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || !value.is_finite() {
        return String::new();
    }
    let n = ((value / max) * width as f64).round().clamp(0.0, width as f64) as usize;
    "#".repeat(n)
}

/// Prints a figure-style table: one row per benchmark, one column per
/// preset, plus a final aggregate row, followed by a bar chart of the four
/// aggregate values.
pub fn print_table(
    title: &str,
    header: &str,
    rows: &[(String, [f64; 4])],
    aggregate: (&str, [f64; 4]),
) {
    println!("\n=== {title} ===");
    println!("{:14} {:>9} {:>9} {:>9} {:>9}   ({header})", "benchmark", "B", "P", "C", "W");
    for (name, vals) in rows {
        println!(
            "{:14} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            name, vals[0], vals[1], vals[2], vals[3]
        );
    }
    let (label, vals) = aggregate;
    println!(
        "{:14} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
        label, vals[0], vals[1], vals[2], vals[3]
    );
    let max = vals.iter().cloned().fold(0.0_f64, f64::max);
    for (letter, v) in ['B', 'P', 'C', 'W'].iter().zip(vals) {
        println!("  {letter} {:<40} {v:.3}", bar(v, max, 36));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_mean_plain_average_when_small() {
        assert!((trimmed_mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-9);
        assert!((trimmed_mean(&[5.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn trimmed_mean_drops_outliers_at_ten() {
        let mut xs = vec![1.0; 7];
        xs.extend([100.0, 200.0, -50.0]);
        let m = trimmed_mean(&xs);
        assert!((m - 1.0).abs() < 15.0, "outliers should be mostly trimmed, got {m}");
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(1.0, 1.0, 10), "##########");
        assert_eq!(bar(0.5, 1.0, 10), "#####");
        assert_eq!(bar(0.0, 1.0, 10), "");
        assert_eq!(bar(2.0, 1.0, 10), "##########", "clamped at full width");
        assert_eq!(bar(1.0, 0.0, 10), "", "zero max renders nothing");
    }

    #[test]
    fn run_once_produces_valid_stats() {
        let s = run_once("arrayswap", Preset::B, 4, 5, Size::Tiny, 1);
        assert!(s.commits() > 0);
    }

    #[test]
    fn run_cell_picks_some_threshold() {
        let opts = SuiteOptions {
            size: Size::Tiny,
            cores: 4,
            seeds: vec![1],
            retry_sweep: vec![2, 8],
            ..SuiteOptions::default()
        };
        let cell = run_cell("mwobject", Preset::B, &opts);
        assert!(cell.best_retries == 2 || cell.best_retries == 8);
        assert_eq!(cell.runs.len(), 1);
    }
}
