//! Legacy facade over [`clear_harness`].
//!
//! The suite machinery that used to live here (option parsing, the
//! best-of retry sweep, trimmed means, table formatting) moved into the
//! `clear-harness` crate, together with a registry of named experiments —
//! one per `src/bin/` binary. This crate keeps the old binary names and
//! re-exports the moved API so downstream scripts and docs keep working:
//!
//! ```text
//! cargo run --release -p clear-bench --bin fig08_exec_time -- --size small
//! # is now the same experiment as
//! cargo run --release -p clear-harness -- run fig08 --size small
//! ```
//!
//! Every binary accepts the common options documented in
//! [`clear_harness::SuiteOptions::from_args`]: `--size tiny|small|medium`,
//! `--cores N`, `--seeds N`, `--sweep full|quick|none`, `--bench NAME`
//! (repeatable) and `--workers N`.

#![warn(missing_docs)]

#[cfg(feature = "bench-ext")]
pub mod timing;

pub use clear_harness::experiments;
pub use clear_harness::{
    bar, format_table, geomean, print_table, run_cell, run_once, run_suite, trimmed_mean,
    CellResult, SuiteOptions,
};
