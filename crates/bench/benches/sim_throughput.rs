//! End-to-end simulator throughput: how fast the machine retires simulated
//! ARs, with and without CLEAR. Besides the wall-clock ns/iter line, each
//! cell reports the kernel's own perf counters as steps per second, the
//! same metric the `sim-throughput` harness experiment tracks.

use clear_bench::run_once;
use clear_bench::timing::bench_function;
use clear_machine::Preset;
use clear_workloads::Size;

fn cell(name: &'static str, preset: Preset) {
    bench_function(&format!("sim_throughput/{name}_8core_{preset}"), 20, || {
        run_once(name, preset, 8, 5, Size::Tiny, 1)
    });
    let perf = run_once(name, preset, 8, 5, Size::Tiny, 1).perf;
    println!(
        "    {} steps, {} coherence requests, {:.2} Msteps/s",
        perf.steps,
        perf.coherence_requests,
        perf.steps_per_sec() / 1e6
    );
}

fn main() {
    for preset in [Preset::B, Preset::C] {
        cell("arrayswap", preset);
        cell("bst", preset);
    }
}
