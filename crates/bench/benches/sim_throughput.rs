//! End-to-end simulator throughput: how fast the machine retires simulated
//! ARs, with and without CLEAR.

use clear_bench::run_once;
use clear_machine::Preset;
use clear_workloads::Size;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    for preset in [Preset::B, Preset::C] {
        g.bench_function(format!("arrayswap_8core_{preset}"), |b| {
            b.iter(|| run_once("arrayswap", preset, 8, 5, Size::Tiny, 1))
        });
        g.bench_function(format!("bst_8core_{preset}"), |b| {
            b.iter(|| run_once("bst", preset, 8, 5, Size::Tiny, 1))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
