//! End-to-end simulator throughput: how fast the machine retires simulated
//! ARs, with and without CLEAR.

use clear_bench::run_once;
use clear_bench::timing::bench_function;
use clear_machine::Preset;
use clear_workloads::Size;

fn main() {
    for preset in [Preset::B, Preset::C] {
        bench_function(
            &format!("sim_throughput/arrayswap_8core_{preset}"),
            20,
            || run_once("arrayswap", preset, 8, 5, Size::Tiny, 1),
        );
        bench_function(&format!("sim_throughput/bst_8core_{preset}"), 20, || {
            run_once("bst", preset, 8, 5, Size::Tiny, 1)
        });
    }
}
