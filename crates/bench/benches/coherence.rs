//! Microbenchmarks of the coherence substrate: probe/apply throughput and
//! cacheline locking round-trips.

use clear_coherence::{Access, CoherenceConfig, CoherenceSystem, CoreId, TxTrack};
use clear_mem::LineAddr;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_access(c: &mut Criterion) {
    c.bench_function("coherence/read_hit", |b| {
        let mut sys = CoherenceSystem::new(CoherenceConfig::table2(32));
        sys.apply(CoreId(0), LineAddr(100), Access::Read, TxTrack::None).unwrap();
        b.iter(|| {
            black_box(
                sys.apply(CoreId(0), LineAddr(100), Access::Read, TxTrack::None)
                    .unwrap()
                    .latency,
            )
        })
    });
    c.bench_function("coherence/write_pingpong_2cores", |b| {
        let mut sys = CoherenceSystem::new(CoherenceConfig::table2(32));
        let mut who = 0usize;
        b.iter(|| {
            who ^= 1;
            black_box(
                sys.apply(CoreId(who), LineAddr(5), Access::Write, TxTrack::None)
                    .unwrap()
                    .latency,
            )
        })
    });
    c.bench_function("coherence/probe_32_sharers", |b| {
        let mut sys = CoherenceSystem::new(CoherenceConfig::table2(32));
        for core in 0..32 {
            sys.apply(CoreId(core), LineAddr(9), Access::Read, TxTrack::Read).unwrap();
        }
        b.iter(|| black_box(sys.probe(CoreId(0), LineAddr(9), Access::Write).remote_impacts.len()))
    });
}

fn bench_locking(c: &mut Criterion) {
    c.bench_function("coherence/lock_unlock", |b| {
        let mut sys = CoherenceSystem::new(CoherenceConfig::table2(32));
        b.iter(|| {
            sys.lock_line(CoreId(0), LineAddr(42)).unwrap();
            sys.unlock_line(CoreId(0), LineAddr(42));
        })
    });
    c.bench_function("coherence/lock_32_ordered", |b| {
        let mut sys = CoherenceSystem::new(CoherenceConfig::table2(32));
        b.iter(|| {
            for i in 0..32u64 {
                sys.lock_line(CoreId(1), LineAddr(1000 + i)).unwrap();
            }
            sys.unlock_all(CoreId(1));
        })
    });
}

criterion_group!(benches, bench_access, bench_locking);
criterion_main!(benches);
