//! Microbenchmarks of the coherence substrate: probe/apply throughput and
//! cacheline locking round-trips.

use clear_bench::timing::{bench_function, black_box};
use clear_coherence::{Access, CoherenceConfig, CoherenceSystem, CoreId, TxTrack};
use clear_mem::LineAddr;

fn bench_access() {
    let mut sys = CoherenceSystem::new(CoherenceConfig::table2(32));
    sys.apply(CoreId(0), LineAddr(100), Access::Read, TxTrack::None)
        .unwrap();
    bench_function("coherence/read_hit", 1_000_000, || {
        black_box(
            sys.apply(CoreId(0), LineAddr(100), Access::Read, TxTrack::None)
                .unwrap()
                .latency,
        )
    });

    let mut sys = CoherenceSystem::new(CoherenceConfig::table2(32));
    let mut who = 0usize;
    bench_function("coherence/write_pingpong_2cores", 500_000, || {
        who ^= 1;
        black_box(
            sys.apply(CoreId(who), LineAddr(5), Access::Write, TxTrack::None)
                .unwrap()
                .latency,
        )
    });

    let mut sys = CoherenceSystem::new(CoherenceConfig::table2(32));
    for core in 0..32 {
        sys.apply(CoreId(core), LineAddr(9), Access::Read, TxTrack::Read)
            .unwrap();
    }
    bench_function("coherence/probe_32_sharers", 500_000, || {
        black_box(
            sys.probe(CoreId(0), LineAddr(9), Access::Write)
                .remote_impacts
                .len(),
        )
    });
}

fn bench_locking() {
    let mut sys = CoherenceSystem::new(CoherenceConfig::table2(32));
    bench_function("coherence/lock_unlock", 500_000, || {
        sys.lock_line(CoreId(0), LineAddr(42)).unwrap();
        sys.unlock_line(CoreId(0), LineAddr(42));
    });

    let mut sys = CoherenceSystem::new(CoherenceConfig::table2(32));
    bench_function("coherence/lock_32_ordered", 50_000, || {
        for i in 0..32u64 {
            sys.lock_line(CoreId(1), LineAddr(1000 + i)).unwrap();
        }
        sys.unlock_all(CoreId(1));
    });
}

fn main() {
    bench_access();
    bench_locking();
}
