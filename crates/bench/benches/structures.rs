//! Microbenchmarks of CLEAR's hardware structures (ERT, ALT, CRT): the
//! per-access cost that would sit on a real pipeline's critical path.

use clear_core::{Alt, Crt, Ert};
use clear_mem::{CacheGeometry, LineAddr};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_ert(c: &mut Criterion) {
    c.bench_function("ert/lookup_hit", |b| {
        let mut ert = Ert::new(16);
        for k in 0..16 {
            ert.entry(k);
        }
        b.iter(|| black_box(ert.lookup(black_box(7))).is_some())
    });
    c.bench_function("ert/entry_miss_evict", |b| {
        let mut ert = Ert::new(16);
        let mut k = 0u32;
        b.iter(|| {
            k = k.wrapping_add(1);
            ert.entry(black_box(k)).is_convertible
        })
    });
}

fn bench_alt(c: &mut Criterion) {
    let dir = CacheGeometry::new(8192, 16);
    c.bench_function("alt/observe_32_lines", |b| {
        b.iter(|| {
            let mut alt = Alt::new(32, dir);
            for i in 0..32u64 {
                alt.observe(LineAddr(i * 37), i % 3 == 0).unwrap();
            }
            black_box(alt.len())
        })
    });
    c.bench_function("alt/lock_list", |b| {
        let mut alt = Alt::new(32, dir);
        for i in 0..32u64 {
            alt.observe(LineAddr(i * 37), i % 2 == 0).unwrap();
        }
        b.iter(|| black_box(alt.lock_list()).len())
    });
}

fn bench_crt(c: &mut Criterion) {
    c.bench_function("crt/record_and_take", |b| {
        let mut crt = Crt::new(8, 8);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            crt.record(LineAddr(i % 128));
            black_box(crt.take(LineAddr((i + 64) % 128)))
        })
    });
}

criterion_group!(benches, bench_ert, bench_alt, bench_crt);
criterion_main!(benches);
