//! Microbenchmarks of CLEAR's hardware structures (ERT, ALT, CRT): the
//! per-access cost that would sit on a real pipeline's critical path.

use clear_bench::timing::{bench_function, black_box};
use clear_core::{Alt, Crt, Ert};
use clear_mem::{CacheGeometry, LineAddr};

fn bench_ert() {
    let mut ert = Ert::new(16);
    for k in 0..16 {
        ert.entry(k);
    }
    bench_function("ert/lookup_hit", 1_000_000, || {
        black_box(ert.lookup(black_box(7))).is_some()
    });

    let mut ert = Ert::new(16);
    let mut k = 0u32;
    bench_function("ert/entry_miss_evict", 1_000_000, || {
        k = k.wrapping_add(1);
        ert.entry(black_box(k)).is_convertible
    });
}

fn bench_alt() {
    let dir = CacheGeometry::new(8192, 16);
    bench_function("alt/observe_32_lines", 100_000, || {
        let mut alt = Alt::new(32, dir);
        for i in 0..32u64 {
            alt.observe(LineAddr(i * 37), i % 3 == 0).unwrap();
        }
        black_box(alt.len())
    });

    let mut alt = Alt::new(32, dir);
    for i in 0..32u64 {
        alt.observe(LineAddr(i * 37), i % 2 == 0).unwrap();
    }
    bench_function("alt/lock_list", 100_000, || {
        black_box(alt.lock_list()).len()
    });
}

fn bench_crt() {
    let mut crt = Crt::new(8, 8);
    let mut i = 0u64;
    bench_function("crt/record_and_take", 1_000_000, || {
        i = i.wrapping_add(1);
        crt.record(LineAddr(i % 128));
        black_box(crt.take(LineAddr((i + 64) % 128)))
    });
}

fn main() {
    bench_ert();
    bench_alt();
    bench_crt();
}
