//! Per-benchmark commit cost across the four configurations, at tiny scale
//! (a smoke-level version of the Fig. 8 sweep suitable for `cargo bench`).

use clear_bench::run_once;
use clear_bench::timing::bench_function;
use clear_machine::Preset;
use clear_workloads::Size;

fn main() {
    for name in ["mwobject", "queue", "intruder", "labyrinth"] {
        for preset in Preset::ALL {
            bench_function(&format!("workload_commit/{name}_{preset}"), 20, || {
                run_once(name, preset, 8, 5, Size::Tiny, 1)
            });
        }
    }
}
