//! Per-benchmark commit cost across the four configurations, at tiny scale
//! (a smoke-level version of the Fig. 8 sweep suitable for `cargo bench`).

use clear_bench::run_once;
use clear_machine::Preset;
use clear_workloads::Size;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_commit");
    g.sample_size(10);
    for name in ["mwobject", "queue", "intruder", "labyrinth"] {
        for preset in Preset::ALL {
            g.bench_function(format!("{name}_{preset}"), |b| {
                b.iter(|| run_once(name, preset, 8, 5, Size::Tiny, 1))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
